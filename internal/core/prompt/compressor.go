// Package prompt implements λ-Tune's prompt-generation component (paper §3):
// the prompt template of Listing 1, the join-structure workload compression
// of §3.2, and the ILP-based snippet selection of §3.3.
package prompt

import (
	"fmt"
	"sort"
	"strings"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/ilp"
	"lambdatune/internal/llm"
	"lambdatune/internal/sqlparser"
)

// Snippet is one join-condition query snippet with its value V(p): the total
// estimated cost of join operators evaluating the condition, summed over the
// workload's default plans (obtained via EXPLAIN).
type Snippet struct {
	Condition sqlparser.JoinCondition
	Value     float64
}

// qualified renders "table.column".
func qualified(table, col string) string { return table + "." + col }

// CollectSnippets runs EXPLAIN for every workload query under the current
// configuration and aggregates per-join-condition costs.
func CollectSnippets(db backend.Backend, queries []*engine.Query) []Snippet {
	values := map[sqlparser.JoinCondition]float64{}
	for _, q := range queries {
		for _, jc := range db.Explain(q) {
			values[jc.Condition.Canonical()] += jc.EstCost
		}
	}
	out := make([]Snippet, 0, len(values))
	for cond, v := range values {
		out = append(out, Snippet{Condition: cond, Value: v})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Value != out[b].Value {
			return out[a].Value > out[b].Value
		}
		return out[a].Condition.String() < out[b].Condition.String()
	})
	return out
}

// Selection is the outcome of snippet selection: which directed pairs appear
// in the compressed representation.
type Selection struct {
	// Lines maps each left-hand-side column to its right-hand-side columns,
	// both as qualified names.
	Lines map[string][]string
	// LineValue accumulates the V(p) conveyed by each LHS's line, so the
	// rendering can lead with the most expensive joins.
	LineValue map[string]float64
	// Value is the total V(p) of the selected snippets.
	Value float64
	// Tokens is the token cost of the rendered representation.
	Tokens int
}

// Render produces the compressed-workload block: one line per LHS column,
// "lhs: rhs1, rhs2". Lines are ordered by descending conveyed value (ties
// broken lexicographically) and each line's right-hand side keeps its
// insertion order, which the selectors populate in descending snippet-value
// order — so both across and within lines, the most expensive joins come
// first. This is deterministic and the natural way to signal importance to
// the LLM.
func (s *Selection) Render() string {
	lhs := make([]string, 0, len(s.Lines))
	for l := range s.Lines {
		lhs = append(lhs, l)
	}
	sort.Slice(lhs, func(a, b int) bool {
		va, vb := s.LineValue[lhs[a]], s.LineValue[lhs[b]]
		if va != vb {
			return va > vb
		}
		return lhs[a] < lhs[b]
	})
	var b strings.Builder
	for _, l := range lhs {
		fmt.Fprintf(&b, "%s: %s\n", l, strings.Join(s.Lines[l], ", "))
	}
	return b.String()
}

// SelectAll builds the complete compressed representation (every join
// condition included) with deterministic, rename-invariant orientation:
// each condition's LHS is the endpoint of higher join-graph degree (more
// sharing → fewer tokens), with value totals breaking ties. Used when the
// token budget is not binding; the ILP below handles the binding case.
func SelectAll(snippets []Snippet) Selection {
	degree := map[string]int{}
	colValue := map[string]float64{}
	for _, sn := range snippets {
		a := qualified(sn.Condition.LeftTable, sn.Condition.LeftColumn)
		b := qualified(sn.Condition.RightTable, sn.Condition.RightColumn)
		degree[a]++
		degree[b]++
		colValue[a] += sn.Value
		colValue[b] += sn.Value
	}
	sel := Selection{Lines: map[string][]string{}, LineValue: map[string]float64{}}
	for _, sn := range snippets { // value-descending order
		a := qualified(sn.Condition.LeftTable, sn.Condition.LeftColumn)
		b := qualified(sn.Condition.RightTable, sn.Condition.RightColumn)
		if a == b {
			continue
		}
		lhs, rhs := a, b
		switch {
		case degree[b] > degree[a]:
			lhs, rhs = b, a
		case degree[b] == degree[a] && colValue[b] > colValue[a]:
			lhs, rhs = b, a
		}
		sel.Lines[lhs] = append(sel.Lines[lhs], rhs)
		sel.LineValue[lhs] += sn.Value
		sel.Value += sn.Value
	}
	sel.Tokens = llm.CountTokens(sel.Render())
	return sel
}

// SelectILP solves the §3.3 integer linear program: choose directed column
// pairs maximizing total value subject to the token budget, the
// LHS/RHS coupling constraints, and symmetric-pair exclusion. When the
// budget admits the complete join structure, the deterministic SelectAll
// orientation is returned directly — the ILP's work is only choosing *which*
// snippets to drop.
//
// Variables (in order): L_c for each column c (appears as a line's LHS),
// then R_p for each directed pair p. Token cost of a line's LHS includes the
// colon; each RHS entry includes its separator.
func SelectILP(snippets []Snippet, budget int) (Selection, error) {
	if budget <= 0 {
		budget = 1 << 20 // effectively unbounded
	}
	if all := SelectAll(snippets); all.Tokens <= budget {
		return all, nil
	}
	// Collect columns and directed pairs.
	colIdx := map[string]int{}
	var cols []string
	addCol := func(c string) int {
		if i, ok := colIdx[c]; ok {
			return i
		}
		colIdx[c] = len(cols)
		cols = append(cols, c)
		return len(cols) - 1
	}
	type pair struct {
		lhs, rhs int
		value    float64
	}
	var pairs []pair
	pairIdx := map[[2]int]int{}
	for _, sn := range snippets {
		a := addCol(qualified(sn.Condition.LeftTable, sn.Condition.LeftColumn))
		b := addCol(qualified(sn.Condition.RightTable, sn.Condition.RightColumn))
		if a == b {
			continue
		}
		for _, dir := range [][2]int{{a, b}, {b, a}} {
			if _, ok := pairIdx[dir]; !ok {
				pairIdx[dir] = len(pairs)
				pairs = append(pairs, pair{lhs: dir[0], rhs: dir[1], value: sn.Value})
			}
		}
	}
	nc, np := len(cols), len(pairs)
	if np == 0 {
		return Selection{Lines: map[string][]string{}, LineValue: map[string]float64{}}, nil
	}
	nv := nc + np

	// Token costs: H_c per column mention.
	hc := make([]float64, nc)
	for i, c := range cols {
		hc[i] = float64(llm.CountTokens(c)) + 1 // +1 for ":" or ", "
	}

	obj := make([]float64, nv)
	for i, p := range pairs {
		obj[nc+i] = p.value
	}

	var rows [][]float64
	var rhs []float64
	// Budget: Σ H_{c2}·R_p + Σ H_c·L_c ≤ B.
	brow := make([]float64, nv)
	for i := range cols {
		brow[i] = hc[i]
	}
	for i, p := range pairs {
		brow[nc+i] = hc[p.rhs]
	}
	rows = append(rows, brow)
	rhs = append(rhs, float64(budget))
	// R_p ≤ L_{lhs}: R - L ≤ 0.
	for i, p := range pairs {
		row := make([]float64, nv)
		row[nc+i] = 1
		row[p.lhs] = -1
		rows = append(rows, row)
		rhs = append(rhs, 0)
	}
	// L_c ≤ Σ R_{c,*}: L - Σ R ≤ 0.
	for ci := range cols {
		row := make([]float64, nv)
		row[ci] = 1
		any := false
		for i, p := range pairs {
			if p.lhs == ci {
				row[nc+i] = -1
				any = true
			}
		}
		if any {
			rows = append(rows, row)
			rhs = append(rhs, 0)
		} else {
			// Column never appears as LHS: force L_c = 0.
			rows = append(rows, row)
			rhs = append(rhs, 0)
		}
	}
	// Symmetric exclusion: R_{a,b} + R_{b,a} ≤ 1. Iterate pairs (not the
	// map) so constraint order — and thus tie-breaking among equal-value
	// solutions — is deterministic.
	for i, p := range pairs {
		if j, ok := pairIdx[[2]int{p.rhs, p.lhs}]; ok && i < j {
			row := make([]float64, nv)
			row[nc+i] = 1
			row[nc+j] = 1
			rows = append(rows, row)
			rhs = append(rhs, 1)
		}
	}

	sol, err := ilp.Solve(ilp.Problem{Obj: obj, A: rows, B: rhs})
	if err != nil {
		return Selection{}, fmt.Errorf("prompt: snippet ILP: %w", err)
	}
	if !sol.Feasible {
		return Selection{Lines: map[string][]string{}, LineValue: map[string]float64{}}, nil
	}
	sel := Selection{Lines: map[string][]string{}, LineValue: map[string]float64{}}
	for i, p := range pairs {
		if sol.X[nc+i] {
			sel.Lines[cols[p.lhs]] = append(sel.Lines[cols[p.lhs]], cols[p.rhs])
			sel.LineValue[cols[p.lhs]] += p.value
			sel.Value += p.value
		}
	}
	sel.Tokens = llm.CountTokens(sel.Render())
	return sel, nil
}

// SelectGreedy is the ablation selector: add snippets in descending value
// order while the rendered representation fits the budget.
func SelectGreedy(snippets []Snippet, budget int) Selection {
	if budget <= 0 {
		budget = 1 << 20
	}
	sel := Selection{Lines: map[string][]string{}, LineValue: map[string]float64{}}
	for _, sn := range snippets {
		l := qualified(sn.Condition.LeftTable, sn.Condition.LeftColumn)
		r := qualified(sn.Condition.RightTable, sn.Condition.RightColumn)
		sel.Lines[l] = append(sel.Lines[l], r)
		sel.LineValue[l] += sn.Value
		if tok := llm.CountTokens(sel.Render()); tok > budget {
			// Undo.
			sel.LineValue[l] -= sn.Value
			rhs := sel.Lines[l]
			if len(rhs) == 1 {
				delete(sel.Lines, l)
				delete(sel.LineValue, l)
			} else {
				sel.Lines[l] = rhs[:len(rhs)-1]
			}
			continue
		}
		sel.Value += sn.Value
	}
	sel.Tokens = llm.CountTokens(sel.Render())
	return sel
}
