package tuner

import (
	"context"
	"errors"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/backend/instrumented"
	"lambdatune/internal/core/selector"
	"lambdatune/internal/engine"
	"lambdatune/internal/llm"
	"lambdatune/internal/obs"
	"lambdatune/internal/workload"
)

// telemetryOpts returns default options with a fresh tracer and registry.
func telemetryOpts() (Options, *obs.Tracer, *obs.Registry) {
	opts := DefaultOptions()
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	opts.Trace = tr
	opts.Metrics = reg
	return opts, tr, reg
}

// checkPartialTelemetry asserts the partial-result contract: a run that ends
// with an error still carries the telemetry summary, the backend stats (when
// instrumented), and the virtual tuning time consumed so far.
func checkPartialTelemetry(t *testing.T, res *Result, instrumented bool) {
	t.Helper()
	if res == nil {
		t.Fatal("partial result dropped")
	}
	if res.Telemetry == nil {
		t.Fatal("Result.Telemetry is nil on a partial result")
	}
	if res.Telemetry.Spans == 0 {
		t.Error("Telemetry.Spans = 0, want the spans recorded before the error")
	}
	if res.Telemetry.Metrics == nil {
		t.Error("Telemetry.Metrics is nil with Options.Metrics set")
	}
	if instrumented && res.BackendStats == nil {
		t.Error("Result.BackendStats is nil on an instrumented partial result")
	}
}

// TestPartialTelemetryOnCancellation: a run cancelled mid-selection returns
// the partial result with Telemetry and BackendStats populated — the
// telemetry collected up to the cancellation must survive.
func TestPartialTelemetryOnCancellation(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		w := workload.TPCH(1)
		sim := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
		ctx, cancel := context.WithCancel(context.Background())
		ca := &cancelAfter{n: 5, cancel: cancel}
		sim.SetExecHook(ca.hook)
		db := instrumented.Wrap(sim)

		opts, _, reg := telemetryOpts()
		opts.Selector.Parallelism = parallelism
		res, err := New(db, llm.NewSimClient(1), opts).Tune(ctx, w.Queries)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism=%d: err = %v, want context.Canceled", parallelism, err)
		}
		checkPartialTelemetry(t, res, true)
		if res.TuningSeconds <= 0 {
			t.Errorf("parallelism=%d: TuningSeconds = %v on a run that executed queries",
				parallelism, res.TuningSeconds)
		}
		if got := reg.Counter("tuner_queries_total").Value(); got <= 0 {
			t.Errorf("parallelism=%d: tuner_queries_total = %v, want > 0", parallelism, got)
		}
		cancel()
	}
}

// samplingCanceler cancels the run after its second LLM call, so Tune hits
// the mid-sampling cancellation path.
type samplingCanceler struct {
	inner  llm.Client
	cancel context.CancelFunc
	calls  int
}

func (c *samplingCanceler) Name() string { return c.inner.Name() }

func (c *samplingCanceler) Complete(ctx context.Context, prompt string) (string, error) {
	c.calls++
	if c.calls == 2 {
		c.cancel()
	}
	return c.inner.Complete(ctx, prompt)
}

// TestPartialTelemetryOnSamplingCancellation: cancellation between LLM
// samples also returns the partial result (with the samples obtained so far)
// instead of dropping it.
func TestPartialTelemetryOnSamplingCancellation(t *testing.T) {
	w := workload.TPCH(1)
	db := instrumented.Wrap(backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts, _, _ := telemetryOpts()
	client := &samplingCanceler{inner: llm.NewSimClient(1), cancel: cancel}
	res, err := New(db, client, opts).Tune(ctx, w.Queries)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	checkPartialTelemetry(t, res, true)
	if len(res.Candidates) == 0 {
		t.Error("samples obtained before the cancellation were dropped")
	}
}

// TestPartialTelemetryOnBudgetExhausted: a run that dies with
// ErrBudgetExhausted still hands back BackendStats and the telemetry summary.
func TestPartialTelemetryOnBudgetExhausted(t *testing.T) {
	w := workload.TPCH(1)
	db := instrumented.Wrap(backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware))
	opts, _, _ := telemetryOpts()
	opts.Selector.InitialTimeout = 1e-6
	opts.Selector.Alpha = 2
	opts.Selector.MaxRounds = 1
	opts.Selector.AdaptiveTimeout = false
	res, err := New(db, llm.NewSimClient(1), opts).Tune(context.Background(), w.Queries)
	if !errors.Is(err, selector.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want selector.ErrBudgetExhausted", err)
	}
	checkPartialTelemetry(t, res, true)
}
