// Package tuner implements λ-Tune's end-to-end tuning pipeline (paper
// Algorithm 1): generate a workload-tailored prompt, sample k candidate
// configurations from the LLM, and identify the best one with the
// bounded-cost configuration selector.
package tuner

import (
	"context"
	"errors"
	"fmt"
	"time"

	"lambdatune/internal/backend"
	"lambdatune/internal/core/evaluator"
	"lambdatune/internal/core/prompt"
	"lambdatune/internal/core/selector"
	"lambdatune/internal/engine"
	"lambdatune/internal/llm"
)

// ErrNoUsableSample reports that every LLM sample failed or produced an
// unparseable configuration script. Inspect the wrapped errors (errors.Join
// of the per-sample failures) for the individual causes.
var ErrNoUsableSample = errors.New("tuner: no usable configuration sample")

// Options configures a tuning run. The zero value is not usable; start from
// DefaultOptions.
type Options struct {
	// Samples is k, the number of LLM calls / candidate configurations
	// (paper §6.1 evaluates 5).
	Samples int
	// Temperature controls LLM output randomization.
	Temperature float64
	// Prompt configures prompt generation (token budget, ILP vs greedy,
	// compressor on/off).
	Prompt prompt.Options
	// Selector configures configuration selection (timeouts, α).
	Selector selector.Options
	// UseScheduler / LazyIndexes toggle the §5 evaluation optimizations
	// (ablation switches).
	UseScheduler bool
	LazyIndexes  bool
	// Seed drives scheduling (k-means) determinism.
	Seed int64
	// MaxRetries bounds re-requests per sample when an LLM call fails or
	// returns an unparseable script (transient API errors are routine with
	// hosted models).
	MaxRetries int
	// Resilience, when set, wraps the client with llm.NewResilientClient
	// (retry/backoff, per-call deadlines, circuit breaker, optional
	// fallback) on the database's virtual clock.
	Resilience *llm.ResilienceOptions
	// SeedDefault adds the live default configuration to the candidate
	// pool, guaranteeing a non-nil Best (never worse than not tuning) even
	// when every LLM candidate is bad or keeps aborting.
	SeedDefault bool
}

// DefaultOptions matches the paper's experimental setup (§6.1).
func DefaultOptions() Options {
	return Options{
		Samples:      5,
		Temperature:  0.7,
		Prompt:       prompt.DefaultOptions(),
		Selector:     selector.DefaultOptions(),
		UseScheduler: true,
		LazyIndexes:  true,
		Seed:         1,
		MaxRetries:   2,
		SeedDefault:  true,
	}
}

// DefaultConfigID labels the default-configuration candidate that
// SeedDefault adds to the pool. Its script is empty: "keep the defaults".
const DefaultConfigID = "default"

// FaultReport is the structured resilience telemetry of one tuning run:
// what failed, what it cost, and what the pipeline did about it.
type FaultReport struct {
	// LLMCalls / LLMFailures count attempts against the (wrapped) client
	// and their failures; LLMRetries counts backoff re-attempts. Zero
	// unless Options.Resilience is set.
	LLMCalls    int
	LLMFailures int
	LLMRetries  int
	// BreakerTrips counts circuit-breaker openings; FallbackCalls counts
	// requests served by the fallback client.
	BreakerTrips  int
	FallbackCalls int
	// BackoffSeconds / BreakerWaitSeconds / FailedCallSeconds are the
	// virtual time spent waiting between retries, waiting out open breaker
	// windows, and inside failed calls; all three are on the database
	// clock and therefore included in Result.TuningSeconds.
	BackoffSeconds     float64
	BreakerWaitSeconds float64
	FailedCallSeconds  float64
	// DroppedSamples counts LLM samples abandoned after per-sample retries
	// (failed calls or unparseable scripts).
	DroppedSamples int
	// QueryAborts / IndexFailures count injected engine faults survived
	// during configuration selection.
	QueryAborts   int
	IndexFailures int
	// DegradedToDefault reports that every usable path failed and the
	// returned Best is the seeded default configuration.
	DegradedToDefault bool
}

// Any reports whether the run observed any fault or degradation.
func (r FaultReport) Any() bool {
	return r.LLMFailures > 0 || r.DroppedSamples > 0 || r.QueryAborts > 0 ||
		r.IndexFailures > 0 || r.BreakerTrips > 0 || r.FallbackCalls > 0 ||
		r.DegradedToDefault
}

// String summarizes the report in one line.
func (r FaultReport) String() string {
	return fmt.Sprintf(
		"llm: %d/%d calls failed, %d retries, %d breaker trips, %d fallback; engine: %d query aborts, %d index failures; dropped samples: %d; wait: %.1fs backoff + %.1fs breaker",
		r.LLMFailures, r.LLMCalls, r.LLMRetries, r.BreakerTrips, r.FallbackCalls,
		r.QueryAborts, r.IndexFailures, r.DroppedSamples, r.BackoffSeconds, r.BreakerWaitSeconds)
}

// Result reports a completed tuning run.
type Result struct {
	// Best is the selected configuration (nil if no candidate completed).
	Best *engine.Config
	// BestTime is the best configuration's full-workload execution time in
	// simulated seconds.
	BestTime float64
	// Candidates are all sampled configurations in sampling order.
	Candidates []*engine.Config
	// Prompt records the generated prompt and its token accounting.
	Prompt prompt.Result
	// Progress traces best-so-far improvements on the virtual clock.
	Progress []selector.ProgressEvent
	// TuningSeconds is the total virtual time the run consumed.
	TuningSeconds float64
	// EvalWallSeconds is the real wall-clock time the configuration
	// selection phase took — the quantity parallel evaluation shrinks.
	EvalWallSeconds float64
	// Warnings aggregates non-fatal issues (e.g. unknown parameters in LLM
	// responses, skipped like a DBA would).
	Warnings []string
	// Metas exposes per-candidate evaluation bookkeeping.
	Metas map[*engine.Config]*evaluator.ConfigMeta
	// Faults is the run's resilience telemetry (zero-valued on a clean run).
	Faults FaultReport
	// BackendStats carries the backend's per-surface observation telemetry
	// (call counters, wall/virtual-clock latency histograms) when the run's
	// backend implements backend.Instrumented — i.e. when it is wrapped with
	// the instrumented decorator. Nil otherwise. The counters are cumulative
	// over the backend's lifetime, not per run.
	BackendStats *backend.Stats
}

// Tuner runs Algorithm 1 against a database backend and workload.
type Tuner struct {
	DB     backend.Backend
	Client llm.Client
	Opts   Options
}

// New creates a tuner with the given LLM client. When opts.Resilience is
// set, the client is wrapped with the resilience layer on the database's
// virtual clock (unless the options carry their own clock).
func New(db backend.Backend, client llm.Client, opts Options) *Tuner {
	if opts.Samples <= 0 {
		opts.Samples = 5
	}
	if opts.Resilience != nil {
		ropts := *opts.Resilience
		if ropts.Clock == nil {
			ropts.Clock = db.Clock()
		}
		if ropts.Seed == 0 {
			ropts.Seed = opts.Seed
		}
		client = llm.NewResilientClient(client, ropts)
	}
	return &Tuner{DB: db, Client: client, Opts: opts}
}

// Tune executes the pipeline: prompt generation, k LLM samples,
// configuration selection. The database's virtual clock advances by the full
// tuning cost (query evaluations and index creations).
//
// Cancelling ctx aborts the run promptly — between LLM calls during
// sampling, and within one query execution during selection — returning
// ctx's error. On a selection error (cancellation, exhausted round budget)
// the partial Result is returned alongside the error so callers keep the
// telemetry and the selector checkpoint stays usable.
func (t *Tuner) Tune(ctx context.Context, queries []*engine.Query) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("tuner: empty workload")
	}
	start := t.DB.Clock().Now()
	abortsBefore, ixFailsBefore := backend.QueryAborts(t.DB), backend.IndexFailures(t.DB)
	statsBefore := clientStats(t.Client)

	// Prompt generation (§3). EXPLAIN-based snippet valuation uses the
	// database's current (default) configuration.
	pr, err := prompt.Generate(t.DB, queries, t.DB.Hardware(), t.Opts.Prompt)
	if err != nil {
		return nil, err
	}
	res := &Result{Prompt: pr}

	// k LLM calls (Algorithm 1 line 3), each retried on transient API
	// failures or unparseable responses.
	var sampleErrs []error
	for i := 0; i < t.Opts.Samples; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg, warns, err := t.sample(ctx, pr.Text, i+1)
		if err != nil {
			sampleErrs = append(sampleErrs, fmt.Errorf("sample %d: %w", i+1, err))
			res.Faults.DroppedSamples++
			res.Warnings = append(res.Warnings, fmt.Sprintf("sample %d dropped: %v", i+1, err))
			continue
		}
		res.Warnings = append(res.Warnings, warns...)
		res.Candidates = append(res.Candidates, cfg)
	}
	t.mergeClientStats(res, statsBefore)
	if len(res.Candidates) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: 0 of %d samples usable: %w",
			ErrNoUsableSample, t.Opts.Samples, errors.Join(sampleErrs...))
	}

	// Graceful degradation: the candidate pool is seeded with the live
	// default configuration, so selection always has a floor — Best is
	// never nil and never worse than not tuning, whatever the LLM returned.
	pool := res.Candidates
	var defaultCfg *engine.Config
	if t.Opts.SeedDefault {
		defaultCfg = &engine.Config{ID: DefaultConfigID, Params: map[string]string{}}
		pool = append([]*engine.Config{defaultCfg}, res.Candidates...)
	}

	// Configuration selection (§4) with lazy-index evaluation (§5).
	eval := evaluator.New(t.DB)
	eval.UseScheduler = t.Opts.UseScheduler
	eval.LazyIndexes = t.Opts.LazyIndexes
	eval.Seed = t.Opts.Seed
	sel := selector.New(eval, queries, t.Opts.Selector)
	wallStart := time.Now()
	best, selErr := sel.Select(ctx, pool)
	res.EvalWallSeconds = time.Since(wallStart).Seconds()
	res.Metas = sel.Metas
	res.Progress = sel.Progress
	if selErr != nil {
		// Cancellation or exhausted round budget: hand the partial result
		// back with the error so telemetry and checkpoints survive.
		res.TuningSeconds = t.DB.Clock().Now() - start
		t.exportBackendStats(res)
		return res, fmt.Errorf("tuner: configuration selection: %w", selErr)
	}
	res.Best = best
	if best != nil {
		res.BestTime = sel.Metas[best].Time
	}
	if best != nil && best == defaultCfg && len(res.Candidates) > 0 {
		res.Faults.DegradedToDefault = true
		res.Warnings = append(res.Warnings,
			"no LLM candidate beat the default configuration; returning the default")
	}
	t.mergeClientStats(res, statsBefore)
	res.Faults.QueryAborts = backend.QueryAborts(t.DB) - abortsBefore
	res.Faults.IndexFailures = backend.IndexFailures(t.DB) - ixFailsBefore
	res.TuningSeconds = t.DB.Clock().Now() - start
	t.exportBackendStats(res)
	return res, nil
}

// exportBackendStats snapshots the backend's observation telemetry onto the
// result when the backend is instrumented.
func (t *Tuner) exportBackendStats(res *Result) {
	if ins, ok := t.DB.(backend.Instrumented); ok {
		st := ins.BackendStats()
		res.BackendStats = &st
	}
}

// clientStats snapshots the resilience telemetry when the client exposes it.
func clientStats(c llm.Client) llm.ResilienceStats {
	if sp, ok := c.(llm.StatsProvider); ok {
		return sp.Stats()
	}
	return llm.ResilienceStats{}
}

// mergeClientStats folds the client's telemetry accumulated since the given
// snapshot into the result's fault report.
func (t *Tuner) mergeClientStats(res *Result, before llm.ResilienceStats) {
	now := clientStats(t.Client)
	res.Faults.LLMCalls = now.Calls - before.Calls
	res.Faults.LLMFailures = now.Failures - before.Failures
	res.Faults.LLMRetries = now.Retries - before.Retries
	res.Faults.BreakerTrips = now.BreakerTrips - before.BreakerTrips
	res.Faults.FallbackCalls = now.FallbackCalls - before.FallbackCalls
	res.Faults.BackoffSeconds = now.BackoffSeconds - before.BackoffSeconds
	res.Faults.BreakerWaitSeconds = now.BreakerWaitSeconds - before.BreakerWaitSeconds
	res.Faults.FailedCallSeconds = now.LatencySeconds - before.LatencySeconds
}

// sample requests one configuration, retrying failed calls and unparseable
// responses up to MaxRetries times.
func (t *Tuner) sample(ctx context.Context, prompt string, idx int) (*engine.Config, []string, error) {
	attempts := 1 + t.Opts.MaxRetries
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, nil, fmt.Errorf("%w (last attempt: %v)", err, lastErr)
			}
			return nil, nil, err
		}
		out, err := llm.Complete(ctx, t.Client, prompt, t.Opts.Temperature)
		if err != nil {
			lastErr = fmt.Errorf("LLM call failed: %w", err)
			continue
		}
		cfg, warns, err := engine.ParseScript(t.DB.Flavor(), fmt.Sprintf("llm-%d", idx), out)
		if err != nil {
			lastErr = fmt.Errorf("unparseable response: %w", err)
			continue
		}
		return cfg, warns, nil
	}
	return nil, nil, lastErr
}

// ApplyBest installs the winning configuration on the database: parameters
// set and all recommended indexes created (clock advances by creation time).
func (t *Tuner) ApplyBest(res *Result) error {
	if res.Best == nil {
		return fmt.Errorf("tuner: no best configuration to apply")
	}
	t.DB.DropTransientIndexes()
	if err := t.DB.ApplyConfig(res.Best); err != nil {
		return err
	}
	for _, ix := range res.Best.Indexes {
		t.DB.CreateIndex(ix)
	}
	return nil
}
