// Package tuner implements λ-Tune's end-to-end tuning pipeline (paper
// Algorithm 1): generate a workload-tailored prompt, sample k candidate
// configurations from the LLM, and identify the best one with the
// bounded-cost configuration selector.
package tuner

import (
	"fmt"

	"lambdatune/internal/core/evaluator"
	"lambdatune/internal/core/prompt"
	"lambdatune/internal/core/selector"
	"lambdatune/internal/engine"
	"lambdatune/internal/llm"
)

// Options configures a tuning run. The zero value is not usable; start from
// DefaultOptions.
type Options struct {
	// Samples is k, the number of LLM calls / candidate configurations
	// (paper §6.1 evaluates 5).
	Samples int
	// Temperature controls LLM output randomization.
	Temperature float64
	// Prompt configures prompt generation (token budget, ILP vs greedy,
	// compressor on/off).
	Prompt prompt.Options
	// Selector configures configuration selection (timeouts, α).
	Selector selector.Options
	// UseScheduler / LazyIndexes toggle the §5 evaluation optimizations
	// (ablation switches).
	UseScheduler bool
	LazyIndexes  bool
	// Seed drives scheduling (k-means) determinism.
	Seed int64
	// MaxRetries bounds re-requests per sample when an LLM call fails or
	// returns an unparseable script (transient API errors are routine with
	// hosted models).
	MaxRetries int
}

// DefaultOptions matches the paper's experimental setup (§6.1).
func DefaultOptions() Options {
	return Options{
		Samples:      5,
		Temperature:  0.7,
		Prompt:       prompt.DefaultOptions(),
		Selector:     selector.DefaultOptions(),
		UseScheduler: true,
		LazyIndexes:  true,
		Seed:         1,
		MaxRetries:   2,
	}
}

// Result reports a completed tuning run.
type Result struct {
	// Best is the selected configuration (nil if no candidate completed).
	Best *engine.Config
	// BestTime is the best configuration's full-workload execution time in
	// simulated seconds.
	BestTime float64
	// Candidates are all sampled configurations in sampling order.
	Candidates []*engine.Config
	// Prompt records the generated prompt and its token accounting.
	Prompt prompt.Result
	// Progress traces best-so-far improvements on the virtual clock.
	Progress []selector.ProgressEvent
	// TuningSeconds is the total virtual time the run consumed.
	TuningSeconds float64
	// Warnings aggregates non-fatal issues (e.g. unknown parameters in LLM
	// responses, skipped like a DBA would).
	Warnings []string
	// Metas exposes per-candidate evaluation bookkeeping.
	Metas map[*engine.Config]*evaluator.ConfigMeta
}

// Tuner runs Algorithm 1 against a database and workload.
type Tuner struct {
	DB     *engine.DB
	Client llm.Client
	Opts   Options
}

// New creates a tuner with the given LLM client.
func New(db *engine.DB, client llm.Client, opts Options) *Tuner {
	if opts.Samples <= 0 {
		opts.Samples = 5
	}
	return &Tuner{DB: db, Client: client, Opts: opts}
}

// Tune executes the pipeline: prompt generation, k LLM samples,
// configuration selection. The database's virtual clock advances by the full
// tuning cost (query evaluations and index creations).
func (t *Tuner) Tune(queries []*engine.Query) (*Result, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("tuner: empty workload")
	}
	start := t.DB.Clock().Now()

	// Prompt generation (§3). EXPLAIN-based snippet valuation uses the
	// database's current (default) configuration.
	pr, err := prompt.Generate(t.DB, queries, t.DB.Hardware(), t.Opts.Prompt)
	if err != nil {
		return nil, err
	}
	res := &Result{Prompt: pr}

	// k LLM calls (Algorithm 1 line 3), each retried on transient API
	// failures or unparseable responses.
	var lastErr error
	for i := 0; i < t.Opts.Samples; i++ {
		cfg, warns, err := t.sample(pr.Text, i+1)
		if err != nil {
			lastErr = err
			res.Warnings = append(res.Warnings, fmt.Sprintf("sample %d dropped: %v", i+1, err))
			continue
		}
		res.Warnings = append(res.Warnings, warns...)
		res.Candidates = append(res.Candidates, cfg)
	}
	if len(res.Candidates) == 0 {
		return nil, fmt.Errorf("tuner: no usable configurations from %d samples (last error: %v)", t.Opts.Samples, lastErr)
	}

	// Configuration selection (§4) with lazy-index evaluation (§5).
	eval := evaluator.New(t.DB)
	eval.UseScheduler = t.Opts.UseScheduler
	eval.LazyIndexes = t.Opts.LazyIndexes
	eval.Seed = t.Opts.Seed
	sel := selector.New(eval, queries, t.Opts.Selector)
	best := sel.Select(res.Candidates)
	res.Best = best
	res.Metas = sel.Metas
	res.Progress = sel.Progress
	if best != nil {
		res.BestTime = sel.Metas[best].Time
	}
	res.TuningSeconds = t.DB.Clock().Now() - start
	return res, nil
}

// sample requests one configuration, retrying failed calls and unparseable
// responses up to MaxRetries times.
func (t *Tuner) sample(prompt string, idx int) (*engine.Config, []string, error) {
	attempts := 1 + t.Opts.MaxRetries
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		out, err := t.Client.Complete(prompt, t.Opts.Temperature)
		if err != nil {
			lastErr = fmt.Errorf("LLM call failed: %w", err)
			continue
		}
		cfg, warns, err := engine.ParseScript(t.DB.Flavor(), fmt.Sprintf("llm-%d", idx), out)
		if err != nil {
			lastErr = fmt.Errorf("unparseable response: %w", err)
			continue
		}
		return cfg, warns, nil
	}
	return nil, nil, lastErr
}

// ApplyBest installs the winning configuration on the database: parameters
// set and all recommended indexes created (clock advances by creation time).
func (t *Tuner) ApplyBest(res *Result) error {
	if res.Best == nil {
		return fmt.Errorf("tuner: no best configuration to apply")
	}
	t.DB.DropTransientIndexes()
	if err := t.DB.ApplyConfigParams(res.Best); err != nil {
		return err
	}
	for _, ix := range res.Best.Indexes {
		t.DB.CreateIndex(ix)
	}
	return nil
}
