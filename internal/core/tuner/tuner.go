// Package tuner implements λ-Tune's end-to-end tuning pipeline (paper
// Algorithm 1): generate a workload-tailored prompt, sample k candidate
// configurations from the LLM, and identify the best one with the
// bounded-cost configuration selector.
package tuner

import (
	"context"
	"errors"
	"fmt"
	"time"

	"lambdatune/internal/backend"
	"lambdatune/internal/core/evaluator"
	"lambdatune/internal/core/prompt"
	"lambdatune/internal/core/selector"
	"lambdatune/internal/engine"
	"lambdatune/internal/llm"
	"lambdatune/internal/obs"
	"lambdatune/internal/runstate"
)

// ErrNoUsableSample reports that every LLM sample failed or produced an
// unparseable configuration script. Inspect the wrapped errors (errors.Join
// of the per-sample failures) for the individual causes.
var ErrNoUsableSample = errors.New("tuner: no usable configuration sample")

// Options configures a tuning run. The zero value is not usable; start from
// DefaultOptions.
type Options struct {
	// Samples is k, the number of LLM calls / candidate configurations
	// (paper §6.1 evaluates 5).
	Samples int
	// Temperature controls LLM output randomization.
	Temperature float64
	// Prompt configures prompt generation (token budget, ILP vs greedy,
	// compressor on/off).
	Prompt prompt.Options
	// Selector configures configuration selection (timeouts, α).
	Selector selector.Options
	// UseScheduler / LazyIndexes toggle the §5 evaluation optimizations
	// (ablation switches).
	UseScheduler bool
	LazyIndexes  bool
	// Seed drives scheduling (k-means) determinism.
	Seed int64
	// MaxRetries bounds re-requests per sample when an LLM call fails or
	// returns an unparseable script (transient API errors are routine with
	// hosted models).
	MaxRetries int
	// Resilience, when set, wraps the client with llm.NewResilientClient
	// (retry/backoff, per-call deadlines, circuit breaker, optional
	// fallback) on the database's virtual clock.
	Resilience *llm.ResilienceOptions
	// SeedDefault adds the live default configuration to the candidate
	// pool, guaranteeing a non-nil Best (never worse than not tuning) even
	// when every LLM candidate is bad or keeps aborting.
	SeedDefault bool
	// Trace, when set, records the run as a span tree (run → prompt /
	// llm.sample / selection → round → candidate → query / index.build):
	// virtual timestamps from the database clock, host wall times as
	// annotations only. Tracing is passive — a traced run selects the same
	// configuration, byte for byte, as an untraced one.
	Trace *obs.Tracer
	// Metrics, when set, receives the run's tuner_* counters/gauges and —
	// when the backend is the instrumented decorator with an attached
	// registry — the backend_* surface metrics.
	Metrics *obs.Registry
	// Progress, when set, receives live round/candidate/timeout narration
	// stamped with virtual timestamps (e.g. obs.NewConsoleReporter).
	Progress obs.ProgressSink
	// Checkpoint, when set, durably persists the run's full resumable state
	// — candidate pool, consumed samples, selector round bookkeeping, clock
	// position — after LLM sampling completes and after every selector
	// round (see internal/runstate). A failed durable write aborts the run.
	Checkpoint *runstate.Store
	// Resume, when set, continues a checkpointed run: prompt generation and
	// LLM sampling are skipped (the paid-for samples come from the state),
	// the virtual clock is restored, and selection continues from the saved
	// round. The state must match this run's workload and options
	// (runstate.ErrCheckpointMismatch otherwise). A run killed at any
	// selector-round boundary and resumed this way selects the same
	// configuration byte-for-byte as the uninterrupted run.
	Resume *runstate.State
	// DecorateState, when set, runs on every checkpoint state before it is
	// written — the API layer stamps the fault injector's RNG position here.
	DecorateState func(*runstate.State)

	// SharedMemo, when set, replaces the run-private evaluation memo with a
	// Runtime-owned cross-job memo (see evaluator.NewSharedMemo). It is
	// honored only when the backend's plan-cache toggle would have built a
	// private memo anyway, preserving the one-switch memoization rule.
	// Memo hits change host CPU time only, never virtual-clock outcomes.
	SharedMemo *evaluator.Memo
	// Slots, when set, is the Runtime's cross-job evaluation admission gate:
	// every Evaluate pass of this run leases one slot. Wall-clock only.
	Slots *evaluator.SharedSlots
	// JobID names this run toward the shared memo and slot gate ("" outside
	// a Runtime): it attributes entries and leases for cross-job telemetry
	// and fair scheduling.
	JobID string
	// SharedPrompt, when set, is a pregenerated prompt for this exact
	// (workload, default configuration, Prompt options) triple, injected by
	// the Runtime from its per-template cache. Tune uses it verbatim instead
	// of calling prompt.Generate — generation is deterministic and touches
	// neither the virtual clock nor the backend state, so the cached result
	// is byte-identical to what this run would have produced.
	SharedPrompt *prompt.Result
}

// DefaultOptions matches the paper's experimental setup (§6.1).
func DefaultOptions() Options {
	return Options{
		Samples:      5,
		Temperature:  0.7,
		Prompt:       prompt.DefaultOptions(),
		Selector:     selector.DefaultOptions(),
		UseScheduler: true,
		LazyIndexes:  true,
		Seed:         1,
		MaxRetries:   2,
		SeedDefault:  true,
	}
}

// DefaultConfigID labels the default-configuration candidate that
// SeedDefault adds to the pool. Its script is empty: "keep the defaults".
const DefaultConfigID = "default"

// FaultReport is the structured resilience telemetry of one tuning run:
// what failed, what it cost, and what the pipeline did about it.
type FaultReport struct {
	// LLMCalls / LLMFailures count attempts against the (wrapped) client
	// and their failures; LLMRetries counts backoff re-attempts. Zero
	// unless Options.Resilience is set.
	LLMCalls    int
	LLMFailures int
	LLMRetries  int
	// BreakerTrips counts circuit-breaker openings; FallbackCalls counts
	// requests served by the fallback client.
	BreakerTrips  int
	FallbackCalls int
	// BackoffSeconds / BreakerWaitSeconds / FailedCallSeconds are the
	// virtual time spent waiting between retries, waiting out open breaker
	// windows, and inside failed calls; all three are on the database
	// clock and therefore included in Result.TuningSeconds.
	BackoffSeconds     float64
	BreakerWaitSeconds float64
	FailedCallSeconds  float64
	// DroppedSamples counts LLM samples abandoned after per-sample retries
	// (failed calls or unparseable scripts).
	DroppedSamples int
	// QueryAborts / IndexFailures count injected engine faults survived
	// during configuration selection.
	QueryAborts   int
	IndexFailures int
	// DegradedToDefault reports that every usable path failed and the
	// returned Best is the seeded default configuration.
	DegradedToDefault bool
}

// Any reports whether the run observed any fault or degradation.
func (r FaultReport) Any() bool {
	return r.LLMFailures > 0 || r.DroppedSamples > 0 || r.QueryAborts > 0 ||
		r.IndexFailures > 0 || r.BreakerTrips > 0 || r.FallbackCalls > 0 ||
		r.DegradedToDefault
}

// String summarizes the report in one line.
func (r FaultReport) String() string {
	return fmt.Sprintf(
		"llm: %d/%d calls failed, %d retries, %d breaker trips, %d fallback; engine: %d query aborts, %d index failures; dropped samples: %d; wait: %.1fs backoff + %.1fs breaker",
		r.LLMFailures, r.LLMCalls, r.LLMRetries, r.BreakerTrips, r.FallbackCalls,
		r.QueryAborts, r.IndexFailures, r.DroppedSamples, r.BackoffSeconds, r.BreakerWaitSeconds)
}

// Result reports a completed tuning run.
type Result struct {
	// Best is the selected configuration (nil if no candidate completed).
	Best *engine.Config
	// BestTime is the best configuration's full-workload execution time in
	// simulated seconds.
	BestTime float64
	// Candidates are all sampled configurations in sampling order.
	Candidates []*engine.Config
	// Prompt records the generated prompt and its token accounting.
	Prompt prompt.Result
	// Progress traces best-so-far improvements on the virtual clock.
	Progress []selector.ProgressEvent
	// TuningSeconds is the total virtual time the run consumed.
	TuningSeconds float64
	// EvalWallSeconds is the real wall-clock time the configuration
	// selection phase took — the quantity parallel evaluation shrinks.
	EvalWallSeconds float64
	// Warnings aggregates non-fatal issues (e.g. unknown parameters in LLM
	// responses, skipped like a DBA would).
	Warnings []string
	// Metas exposes per-candidate evaluation bookkeeping.
	Metas map[*engine.Config]*evaluator.ConfigMeta
	// Faults is the run's resilience telemetry (zero-valued on a clean run).
	Faults FaultReport
	// BackendStats carries the backend's per-surface observation telemetry
	// (call counters, wall/virtual-clock latency histograms) when the run's
	// backend implements backend.Instrumented — i.e. when it is wrapped with
	// the instrumented decorator. Nil otherwise. The counters are cumulative
	// over the backend's lifetime, not per run.
	BackendStats *backend.Stats
	// Telemetry condenses the run's trace (span/event totals, per-phase
	// virtual/wall cost breakdown) and metrics snapshot. Non-nil whenever
	// Options.Trace or Options.Metrics was set — including on partial
	// results returned with an error (cancellation, exhausted budget).
	Telemetry *obs.Summary
}

// Tuner runs Algorithm 1 against a database backend and workload.
type Tuner struct {
	DB     backend.Backend
	Client llm.Client
	Opts   Options
}

// New creates a tuner with the given LLM client. When opts.Resilience is
// set, the client is wrapped with the resilience layer on the database's
// virtual clock (unless the options carry their own clock).
func New(db backend.Backend, client llm.Client, opts Options) *Tuner {
	if opts.Samples <= 0 {
		opts.Samples = 5
	}
	if opts.Resilience != nil {
		ropts := *opts.Resilience
		if ropts.Clock == nil {
			ropts.Clock = db.Clock()
		}
		if ropts.Seed == 0 {
			ropts.Seed = opts.Seed
		}
		client = llm.NewResilientClient(client, ropts)
	}
	return &Tuner{DB: db, Client: client, Opts: opts}
}

// Tune executes the pipeline: prompt generation, k LLM samples,
// configuration selection. The database's virtual clock advances by the full
// tuning cost (query evaluations and index creations).
//
// Cancelling ctx aborts the run promptly — between LLM calls during
// sampling, and within one query execution during selection — returning
// ctx's error. On a selection error (cancellation, exhausted round budget)
// the partial Result is returned alongside the error so callers keep the
// telemetry and the selector checkpoint stays usable.
func (t *Tuner) Tune(ctx context.Context, queries []*engine.Query) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("tuner: empty workload")
	}
	clock := t.DB.Clock()
	// Checkpoint/resume digests: a checkpoint is only resumable onto the same
	// workload under the same selection-relevant options (Fingerprint).
	var wdigest, odigest string
	if t.Opts.Checkpoint != nil || t.Opts.Resume != nil {
		wdigest = runstate.WorkloadDigest("", queries)
		odigest = t.fingerprint().Digest()
	}
	if st := t.Opts.Resume; st != nil {
		if err := st.Validate(wdigest, odigest); err != nil {
			return nil, fmt.Errorf("tuner: resume: %w", err)
		}
		// Restore the virtual clock exactly; the run's remaining cost then
		// accumulates on top of everything already paid before the crash.
		clock.Set(st.ClockSeconds)
	}
	start := clock.Now()
	if st := t.Opts.Resume; st != nil {
		start = st.StartClockSeconds
	}
	abortsBefore, ixFailsBefore := backend.QueryAborts(t.DB), backend.IndexFailures(t.DB)
	statsBefore := clientStats(t.Client)

	tr := t.Opts.Trace
	runSpan := tr.Start(nil, "run", start,
		obs.Int("samples", t.Opts.Samples), obs.Int("queries", len(queries)),
		obs.Int("parallelism", t.Opts.Selector.Parallelism))
	obs.Emitf(t.Opts.Progress, start, "run", "tuning run: %d queries, %d samples, parallelism %d",
		len(queries), t.Opts.Samples, t.Opts.Selector.Parallelism)
	// finish closes the run on every exit path that has a result — success,
	// cancellation, exhausted budget — so BackendStats and the Telemetry
	// summary are populated even on partial results.
	finish := func(res *Result) {
		res.TuningSeconds = clock.Now() - start
		t.exportBackendStats(res)
		t.exportMetrics(res)
		if res.Best != nil {
			runSpan.SetAttrs(obs.String("best", res.Best.ID), obs.Float("best_time", res.BestTime))
		}
		runSpan.End(clock.Now())
		t.exportTelemetry(res)
		obs.Emitf(t.Opts.Progress, clock.Now(), "run", "done: best=%s tuning=%.4gs",
			bestID(res), res.TuningSeconds)
	}

	var res *Result
	if st := t.Opts.Resume; st != nil {
		// Resume path: the prompt accounting and the paid-for LLM samples come
		// from the checkpoint — no prompt is regenerated, no token spent twice.
		res = &Result{Prompt: prompt.Result{TotalTokens: st.PromptTokens}}
		res.Candidates = runstate.RestoreConfigs(st.Candidates)
		res.Warnings = append(res.Warnings, st.Warnings...)
		res.Faults.DroppedSamples = st.DroppedSamples
		round := 0
		if st.Round != nil {
			round = st.Round.Round
		}
		runSpan.Event("resume", clock.Now(),
			obs.Int("round", round), obs.Int("candidates", len(res.Candidates)))
		t.Opts.Metrics.Counter("runstate_resumes_total").Inc()
		obs.Emitf(t.Opts.Progress, clock.Now(), "resume",
			"resuming from checkpoint: %d candidates, round %d, clock %.4gs",
			len(res.Candidates), round, st.ClockSeconds)
		if len(res.Candidates) == 0 {
			finish(res)
			return res, fmt.Errorf("%w: checkpoint carries no candidates", ErrNoUsableSample)
		}
	} else {
		// Prompt generation (§3). EXPLAIN-based snippet valuation uses the
		// database's current (default) configuration. A Runtime that already
		// generated this exact prompt for an earlier job hands it in instead.
		promptSpan := tr.Start(runSpan, "prompt", clock.Now())
		var pr prompt.Result
		var err error
		if t.Opts.SharedPrompt != nil {
			pr = *t.Opts.SharedPrompt
		} else {
			pr, err = prompt.Generate(t.DB, queries, t.DB.Hardware(), t.Opts.Prompt)
		}
		promptSpan.SetAttrs(obs.Int("tokens", pr.TotalTokens))
		promptSpan.End(clock.Now())
		if err != nil {
			runSpan.End(clock.Now())
			return nil, err
		}
		res = &Result{Prompt: pr}

		// k LLM calls (Algorithm 1 line 3), each retried on transient API
		// failures or unparseable responses. Each sample's span is carried in
		// the call context so the resilient client can attach its retry /
		// breaker / fallback events to it.
		var sampleErrs []error
		for i := 0; i < t.Opts.Samples; i++ {
			if err := ctx.Err(); err != nil {
				// Cancelled mid-sampling: still hand back the partial result so
				// the telemetry collected so far survives.
				t.mergeClientStats(res, statsBefore)
				finish(res)
				return res, err
			}
			sampleSpan := tr.Start(runSpan, "llm.sample", clock.Now(), obs.Int("idx", i+1))
			sctx := obs.ContextWithSpan(ctx, sampleSpan)
			cfg, warns, err := t.sample(sctx, pr.Text, i+1)
			sampleSpan.SetAttrs(obs.Bool("ok", err == nil))
			sampleSpan.End(clock.Now())
			if err != nil {
				sampleErrs = append(sampleErrs, fmt.Errorf("sample %d: %w", i+1, err))
				res.Faults.DroppedSamples++
				res.Warnings = append(res.Warnings, fmt.Sprintf("sample %d dropped: %v", i+1, err))
				obs.Emitf(t.Opts.Progress, clock.Now(), "llm", "sample %d/%d dropped: %v", i+1, t.Opts.Samples, err)
				continue
			}
			res.Warnings = append(res.Warnings, warns...)
			res.Candidates = append(res.Candidates, cfg)
			obs.Emitf(t.Opts.Progress, clock.Now(), "llm", "sample %d/%d ok: %s", i+1, t.Opts.Samples, cfg.ID)
		}
		t.mergeClientStats(res, statsBefore)
		if len(res.Candidates) == 0 {
			finish(res)
			if err := ctx.Err(); err != nil {
				return res, err
			}
			return res, fmt.Errorf("%w: 0 of %d samples usable: %w",
				ErrNoUsableSample, t.Opts.Samples, errors.Join(sampleErrs...))
		}
	}

	// Graceful degradation: the candidate pool is seeded with the live
	// default configuration, so selection always has a floor — Best is
	// never nil and never worse than not tuning, whatever the LLM returned.
	pool := res.Candidates
	var defaultCfg *engine.Config
	if t.Opts.SeedDefault {
		defaultCfg = &engine.Config{ID: DefaultConfigID, Params: map[string]string{}}
		pool = append([]*engine.Config{defaultCfg}, res.Candidates...)
	}

	// Configuration selection (§4) with lazy-index evaluation (§5).
	eval := evaluator.New(t.DB)
	eval.UseScheduler = t.Opts.UseScheduler
	eval.LazyIndexes = t.Opts.LazyIndexes
	eval.Seed = t.Opts.Seed
	eval.Trace = tr
	eval.Metrics = t.Opts.Metrics
	if t.Opts.SharedMemo != nil && eval.Memo != nil {
		// Borrow the Runtime's namespace memo instead of the run-private one
		// (only when the plan-cache toggle enabled memoization at all).
		eval.Memo = t.Opts.SharedMemo
	}
	eval.Owner = t.Opts.JobID
	eval.Slots = t.Opts.Slots
	sel := selector.New(eval, queries, t.Opts.Selector)
	sel.Trace = tr
	sel.Span = tr.Start(runSpan, "selection", clock.Now(), obs.Int("candidates", len(pool)))
	sel.Reporter = t.Opts.Progress
	sel.Metrics = t.Opts.Metrics
	if st := t.Opts.Resume; st != nil && st.Round != nil {
		sel.Resume(st.Round.Restore())
	}
	if store := t.Opts.Checkpoint; store != nil {
		saveCkpt := func(rs *selector.RoundState) error {
			st := &runstate.State{
				RunID:             store.RunID,
				WorkloadDigest:    wdigest,
				OptionsDigest:     odigest,
				StartClockSeconds: start,
				ClockSeconds:      clock.Now(),
				PromptTokens:      res.Prompt.TotalTokens,
				SeedDefault:       t.Opts.SeedDefault,
				Candidates:        runstate.CaptureConfigs(res.Candidates),
				Warnings:          res.Warnings,
				DroppedSamples:    res.Faults.DroppedSamples,
				Round:             runstate.CaptureRound(rs),
			}
			if t.Opts.DecorateState != nil {
				t.Opts.DecorateState(st)
			}
			n, err := store.Save(st)
			if n > 0 {
				// Count the write even when a post-save hook (kill point)
				// errors — the bytes are already durable.
				t.Opts.Metrics.Counter("runstate_checkpoints_total").Inc()
				t.Opts.Metrics.Counter("runstate_checkpoint_bytes_total").Add(float64(n))
				t.Opts.Metrics.Gauge("runstate_last_checkpoint_bytes").Set(float64(n))
			}
			round := 0
			if rs != nil {
				round = rs.Round
			}
			runSpan.Event("checkpoint.saved", clock.Now(),
				obs.Int("round", round), obs.Int("bytes", n))
			return err
		}
		if t.Opts.Resume == nil {
			// The post-sampling checkpoint makes the paid-for LLM samples
			// durable before the first evaluation round runs.
			if err := saveCkpt(nil); err != nil {
				finish(res)
				return res, fmt.Errorf("tuner: checkpoint: %w", err)
			}
		}
		sel.OnCheckpoint = saveCkpt
	}
	wallStart := time.Now()
	best, selErr := sel.Select(ctx, pool)
	res.EvalWallSeconds = time.Since(wallStart).Seconds()
	sel.Span.End(clock.Now())
	res.Metas = sel.Metas
	res.Progress = sel.Progress
	res.Faults.QueryAborts = backend.QueryAborts(t.DB) - abortsBefore
	res.Faults.IndexFailures = backend.IndexFailures(t.DB) - ixFailsBefore
	if selErr != nil {
		// Cancellation or exhausted round budget: hand the partial result
		// back with the error so telemetry and checkpoints survive.
		finish(res)
		return res, fmt.Errorf("tuner: configuration selection: %w", selErr)
	}
	res.Best = best
	if best != nil {
		res.BestTime = sel.Metas[best].Time
	}
	if best != nil && best == defaultCfg && len(res.Candidates) > 0 {
		res.Faults.DegradedToDefault = true
		res.Warnings = append(res.Warnings,
			"no LLM candidate beat the default configuration; returning the default")
	}
	t.mergeClientStats(res, statsBefore)
	finish(res)
	return res, nil
}

// fingerprint condenses this run's selection-relevant options for checkpoint
// validation (see runstate.Fingerprint for what is deliberately excluded).
func (t *Tuner) fingerprint() runstate.Fingerprint {
	fp := runstate.Fingerprint{
		Flavor:         t.DB.Flavor().String(),
		Seed:           t.Opts.Seed,
		Samples:        t.Opts.Samples,
		Temperature:    t.Opts.Temperature,
		TokenBudget:    t.Opts.Prompt.TokenBudget,
		InitialTimeout: t.Opts.Selector.InitialTimeout,
		Alpha:          t.Opts.Selector.Alpha,
		Adaptive:       t.Opts.Selector.AdaptiveTimeout,
		UseScheduler:   t.Opts.UseScheduler,
		LazyIndexes:    t.Opts.LazyIndexes,
		SeedDefault:    t.Opts.SeedDefault,
	}
	if t.Opts.Selector.Strategy == selector.Racing {
		r := t.Opts.Selector.Racing.Norm()
		fp.Racing = true
		fp.RaceStart = r.StartFraction
		fp.RaceGrowth = r.Growth
		fp.RaceFinal = r.FinalSurvivors
		fp.RaceNoElim = r.DisableElimination
	}
	return fp
}

// exportBackendStats snapshots the backend's observation telemetry onto the
// result when the backend is instrumented.
func (t *Tuner) exportBackendStats(res *Result) {
	if ins, ok := t.DB.(backend.Instrumented); ok {
		st := ins.BackendStats()
		res.BackendStats = &st
	}
}

// exportMetrics pushes the run-level resilience counters (from the fault
// report deltas) and timing gauges into the registry.
func (t *Tuner) exportMetrics(res *Result) {
	reg := t.Opts.Metrics
	if reg == nil {
		return
	}
	f := res.Faults
	reg.Counter("tuner_llm_calls_total").Add(float64(f.LLMCalls))
	reg.Counter("tuner_llm_failures_total").Add(float64(f.LLMFailures))
	reg.Counter("tuner_llm_retries_total").Add(float64(f.LLMRetries))
	reg.Counter("tuner_llm_breaker_trips_total").Add(float64(f.BreakerTrips))
	reg.Counter("tuner_llm_fallback_calls_total").Add(float64(f.FallbackCalls))
	reg.Counter("tuner_dropped_samples_total").Add(float64(f.DroppedSamples))
	reg.Gauge("tuner_tuning_seconds").Set(res.TuningSeconds)
	if res.Best != nil {
		reg.Gauge("tuner_best_seconds").Set(res.BestTime)
	}
}

// exportTelemetry condenses the trace and metrics registry into the result's
// Telemetry summary. No-op when neither telemetry option is set.
func (t *Tuner) exportTelemetry(res *Result) {
	tr, reg := t.Opts.Trace, t.Opts.Metrics
	if tr == nil && reg == nil {
		return
	}
	sum := tr.Summarize()
	if reg != nil {
		sum.Metrics = reg.Snapshot()
	}
	res.Telemetry = &sum
}

// bestID names the selected configuration for progress narration.
func bestID(res *Result) string {
	if res.Best == nil {
		return "<none>"
	}
	return res.Best.ID
}

// clientStats snapshots the resilience telemetry when the client exposes it.
func clientStats(c llm.Client) llm.ResilienceStats {
	if sp, ok := c.(llm.StatsProvider); ok {
		return sp.Stats()
	}
	return llm.ResilienceStats{}
}

// mergeClientStats folds the client's telemetry accumulated since the given
// snapshot into the result's fault report.
func (t *Tuner) mergeClientStats(res *Result, before llm.ResilienceStats) {
	now := clientStats(t.Client)
	res.Faults.LLMCalls = now.Calls - before.Calls
	res.Faults.LLMFailures = now.Failures - before.Failures
	res.Faults.LLMRetries = now.Retries - before.Retries
	res.Faults.BreakerTrips = now.BreakerTrips - before.BreakerTrips
	res.Faults.FallbackCalls = now.FallbackCalls - before.FallbackCalls
	res.Faults.BackoffSeconds = now.BackoffSeconds - before.BackoffSeconds
	res.Faults.BreakerWaitSeconds = now.BreakerWaitSeconds - before.BreakerWaitSeconds
	res.Faults.FailedCallSeconds = now.LatencySeconds - before.LatencySeconds
}

// sample requests one configuration, retrying failed calls and unparseable
// responses up to MaxRetries times.
func (t *Tuner) sample(ctx context.Context, prompt string, idx int) (*engine.Config, []string, error) {
	attempts := 1 + t.Opts.MaxRetries
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, nil, fmt.Errorf("%w (last attempt: %v)", err, lastErr)
			}
			return nil, nil, err
		}
		out, err := llm.Complete(ctx, t.Client, prompt, t.Opts.Temperature)
		if err != nil {
			lastErr = fmt.Errorf("LLM call failed: %w", err)
			continue
		}
		cfg, warns, err := engine.ParseScript(t.DB.Flavor(), fmt.Sprintf("llm-%d", idx), out)
		if err != nil {
			lastErr = fmt.Errorf("unparseable response: %w", err)
			continue
		}
		return cfg, warns, nil
	}
	return nil, nil, lastErr
}

// ApplyBest installs the winning configuration on the database: parameters
// set and all recommended indexes created (clock advances by creation time).
func (t *Tuner) ApplyBest(res *Result) error {
	if res.Best == nil {
		return fmt.Errorf("tuner: no best configuration to apply")
	}
	t.DB.DropTransientIndexes()
	if err := t.DB.ApplyConfig(res.Best); err != nil {
		return err
	}
	for _, ix := range res.Best.Indexes {
		t.DB.CreateIndex(ix)
	}
	return nil
}
