package tuner

import (
	"context"
	"fmt"
	"math"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/llm"
	"lambdatune/internal/workload"
)

func run(t *testing.T, bench string, flavor engine.Flavor, opts Options) (*Result, *backend.Sim) {
	t.Helper()
	w, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	db := backend.NewSim(flavor, w.Catalog, engine.DefaultHardware)
	tn := New(db, llm.NewSimClient(42), opts)
	res, err := tn.Tune(context.Background(), w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	return res, db
}

func TestTuneEndToEndTPCH(t *testing.T) {
	res, _ := run(t, "tpch-1", engine.Postgres, DefaultOptions())
	if res.Best == nil {
		t.Fatal("no best configuration")
	}
	if res.BestTime <= 0 {
		t.Errorf("best time: %v", res.BestTime)
	}
	if len(res.Candidates) != 5 {
		t.Errorf("candidates: %d", len(res.Candidates))
	}
	if res.TuningSeconds <= res.BestTime {
		t.Errorf("tuning time %v ≤ best workload time %v", res.TuningSeconds, res.BestTime)
	}
}

func TestTunedBeatsDefault(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	defaultTime := db.WorkloadSeconds(w.Queries)

	tn := New(db, llm.NewSimClient(42), DefaultOptions())
	res, err := tn.Tune(context.Background(), w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestTime >= defaultTime {
		t.Errorf("tuned %v not faster than default %v", res.BestTime, defaultTime)
	}
	// The paper reports multi-x improvements on TPC-H; require at least 1.5x.
	if res.BestTime > defaultTime/1.5 {
		t.Errorf("improvement below 1.5x: %v vs %v", res.BestTime, defaultTime)
	}
}

func TestTuneMySQL(t *testing.T) {
	res, db := run(t, "tpch-1", engine.MySQL, DefaultOptions())
	if res.Best == nil {
		t.Fatal("no best configuration")
	}
	if db.Flavor() != engine.MySQL {
		t.Fatal("flavor")
	}
	// Winning config must speak MySQL (no Postgres parameter names).
	for name := range res.Best.Params {
		if _, ok := engine.Params(engine.MySQL).Lookup(name); !ok {
			t.Errorf("non-MySQL parameter %q in best config", name)
		}
	}
}

func TestTuneDeterministic(t *testing.T) {
	r1, _ := run(t, "tpch-1", engine.Postgres, DefaultOptions())
	r2, _ := run(t, "tpch-1", engine.Postgres, DefaultOptions())
	if r1.Best.ID != r2.Best.ID || r1.BestTime != r2.BestTime {
		t.Errorf("nondeterministic: %s/%v vs %s/%v", r1.Best.ID, r1.BestTime, r2.Best.ID, r2.BestTime)
	}
}

func TestTuneTimeBounded(t *testing.T) {
	// Theorem 4.3 plus reconfiguration overheads: total tuning time stays
	// within a small multiple of k·α·C_best.
	res, _ := run(t, "tpch-1", engine.Postgres, DefaultOptions())
	k := float64(len(res.Candidates))
	bound := 3 * k * DefaultOptions().Selector.Alpha * res.BestTime
	if res.TuningSeconds > bound {
		t.Errorf("tuning %v exceeds 3·k·α·C_best = %v", res.TuningSeconds, bound)
	}
}

func TestApplyBest(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	tn := New(db, llm.NewSimClient(42), DefaultOptions())
	res, err := tn.Tune(context.Background(), w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.ApplyBest(res); err != nil {
		t.Fatal(err)
	}
	if len(db.Indexes()) != len(res.Best.Indexes) {
		t.Errorf("indexes installed: %d of %d", len(db.Indexes()), len(res.Best.Indexes))
	}
	// Workload under the applied config matches the measured best time.
	if got := db.WorkloadSeconds(w.Queries); math.Abs(got-res.BestTime) > res.BestTime*0.01 {
		t.Errorf("applied config runs in %v, selector measured %v", got, res.BestTime)
	}
}

func TestTuneEmptyWorkload(t *testing.T) {
	db := backend.NewSim(engine.Postgres, workload.TPCH(1).Catalog, engine.DefaultHardware)
	tn := New(db, llm.NewSimClient(1), DefaultOptions())
	if _, err := tn.Tune(context.Background(), nil); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestTuneJOB(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res, _ := run(t, "job", engine.Postgres, DefaultOptions())
	if res.Best == nil {
		t.Fatal("no best configuration for JOB")
	}
}

// errClient always fails; Tune must surface the error.
type errClient struct{}

func (errClient) Complete(context.Context, string) (string, error) {
	return "", fmt.Errorf("api down")
}
func (errClient) Name() string { return "err" }

func TestTuneLLMError(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	tn := New(db, errClient{}, DefaultOptions())
	if _, err := tn.Tune(context.Background(), w.Queries); err == nil {
		t.Error("LLM failure not surfaced")
	}
}

// flakyClient fails the first n calls, then delegates to a SimClient.
type flakyClient struct {
	failures int
	inner    llm.Client
}

func (f *flakyClient) Complete(ctx context.Context, prompt string) (string, error) {
	if f.failures > 0 {
		f.failures--
		return "", fmt.Errorf("transient: rate limited")
	}
	return f.inner.Complete(ctx, prompt)
}
func (f *flakyClient) Name() string { return "flaky" }

func TestTuneRetriesTransientFailures(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	// 2 failures; with MaxRetries=2 every sample still succeeds eventually.
	client := &flakyClient{failures: 2, inner: llm.NewSimClient(42)}
	tn := New(db, client, DefaultOptions())
	res, err := tn.Tune(context.Background(), w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best configuration despite retries")
	}
	if len(res.Candidates) == 0 {
		t.Error("no candidates")
	}
}

func TestTuneRetriesExhausted(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	// More failures than samples × (1+retries): every sample drops.
	client := &flakyClient{failures: 1000, inner: llm.NewSimClient(42)}
	tn := New(db, client, DefaultOptions())
	if _, err := tn.Tune(context.Background(), w.Queries); err == nil {
		t.Error("exhausted retries not surfaced as error")
	}
}

// garbageClient returns non-SQL; all samples are skipped.
type garbageClient struct{}

func (garbageClient) Complete(context.Context, string) (string, error) {
	return "I am sorry, I cannot help with that.", nil
}
func (garbageClient) Name() string { return "garbage" }

func TestTuneAllSamplesUnparseable(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	tn := New(db, garbageClient{}, DefaultOptions())
	if _, err := tn.Tune(context.Background(), w.Queries); err == nil {
		t.Error("all-garbage samples not surfaced as error")
	}
}
