package tuner

import (
	"context"
	"errors"
	"os"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/llm"
	"lambdatune/internal/runstate"
	"lambdatune/internal/workload"
)

// errKill is the sentinel a kill-point hook returns to simulate a crash at a
// checkpoint boundary.
var errKill = errors.New("kill point reached")

// ckptOpts returns checkpoint-friendly options with the given parallelism.
func ckptOpts(parallelism int) Options {
	opts := DefaultOptions()
	opts.Selector.Parallelism = parallelism
	return opts
}

// runCheckpointed runs a full tuning run that checkpoints into dir, killing
// the run (via an AfterSave error) after save number killAfter; killAfter <= 0
// disables the kill. It returns the result, the run error, and the store.
func runCheckpointed(t *testing.T, dir string, parallelism, killAfter int) (*Result, error, *runstate.Store) {
	t.Helper()
	w, err := workload.ByName("tpch-1")
	if err != nil {
		t.Fatal(err)
	}
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	store := runstate.NewStore(dir, "test-run")
	if killAfter > 0 {
		store.AfterSave = func(*runstate.State) error {
			if store.Saves() >= killAfter {
				return errKill
			}
			return nil
		}
	}
	opts := ckptOpts(parallelism)
	opts.Checkpoint = store
	tn := New(db, llm.NewSimClient(42), opts)
	res, rerr := tn.Tune(context.Background(), w.Queries)
	return res, rerr, store
}

// resumeCheckpointed loads the latest checkpoint from dir and resumes the run
// on a fresh backend at the given parallelism.
func resumeCheckpointed(t *testing.T, dir string, parallelism int) *Result {
	t.Helper()
	w, err := workload.ByName("tpch-1")
	if err != nil {
		t.Fatal(err)
	}
	store := runstate.NewStore(dir, "test-run")
	st, fellBack, err := store.Load()
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	if fellBack {
		t.Fatalf("unexpected fallback to previous checkpoint generation")
	}
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	opts := ckptOpts(parallelism)
	opts.Checkpoint = store
	opts.Resume = st
	tn := New(db, llm.NewSimClient(42), opts)
	res, err := tn.Tune(context.Background(), w.Queries)
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	return res
}

// assertSameOutcome requires the resumed run to reproduce the uninterrupted
// run's selection exactly — same winner, bit-identical times.
func assertSameOutcome(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if want.Best == nil || got.Best == nil {
		t.Fatalf("%s: nil best (want %v, got %v)", label, want.Best, got.Best)
	}
	if got.Best.ID != want.Best.ID {
		t.Errorf("%s: best %q != %q", label, got.Best.ID, want.Best.ID)
	}
	if got.BestTime != want.BestTime {
		t.Errorf("%s: best time %v != %v", label, got.BestTime, want.BestTime)
	}
	if got.TuningSeconds != want.TuningSeconds {
		t.Errorf("%s: tuning seconds %v != %v", label, got.TuningSeconds, want.TuningSeconds)
	}
	if got.Prompt.TotalTokens != want.Prompt.TotalTokens {
		t.Errorf("%s: prompt tokens %d != %d", label, got.Prompt.TotalTokens, want.Prompt.TotalTokens)
	}
}

func TestCheckpointingIsPassive(t *testing.T) {
	plain, _ := run(t, "tpch-1", engine.Postgres, ckptOpts(1))
	ckpt, err, store := runCheckpointed(t, t.TempDir(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, "checkpointed vs plain", plain, ckpt)
	if store.Saves() < 2 {
		t.Fatalf("expected ≥2 checkpoint saves (post-sampling + rounds), got %d", store.Saves())
	}
	if _, err := os.Stat(store.Path()); err != nil {
		t.Fatalf("live checkpoint missing: %v", err)
	}
}

// TestKillResumeEveryBoundary kills the run at every checkpoint boundary in
// turn and requires each same-parallelism resume to reproduce the
// uninterrupted outcome byte-for-byte (final checkpoint files included), at
// parallelism 1 and 4. Cross-parallelism resumes must select the same winner
// at the same workload time (selection is parallelism-invariant), but their
// virtual tuning cost legitimately differs — parallel evaluation is the
// point — so timing identity is only asserted when the parallelism matches.
func TestKillResumeEveryBoundary(t *testing.T) {
	wants := map[int]*Result{}
	finals := map[int][]byte{}
	totals := map[int]int{}
	for _, p := range []int{1, 4} {
		dir := t.TempDir()
		want, err, store := runCheckpointed(t, dir, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(store.Path())
		if err != nil {
			t.Fatal(err)
		}
		wants[p], finals[p], totals[p] = want, data, store.Saves()
	}
	if wants[1].Best.ID != wants[4].Best.ID || wants[1].BestTime != wants[4].BestTime {
		t.Fatalf("selection not parallelism-invariant: P1 %s/%v vs P4 %s/%v",
			wants[1].Best.ID, wants[1].BestTime, wants[4].Best.ID, wants[4].BestTime)
	}

	for _, pair := range []struct{ killP, resumeP int }{{1, 1}, {4, 4}, {1, 4}, {4, 1}} {
		for killAfter := 1; killAfter <= totals[pair.killP]; killAfter++ {
			label := "P" + itoa(pair.killP) + "→P" + itoa(pair.resumeP) + " kill@" + itoa(killAfter)
			dir := t.TempDir()
			_, rerr, _ := runCheckpointed(t, dir, pair.killP, killAfter)
			if !errors.Is(rerr, errKill) {
				t.Fatalf("%s: expected kill error, got %v", label, rerr)
			}
			got := resumeCheckpointed(t, dir, pair.resumeP)
			want := wants[pair.resumeP]
			if got.Best == nil {
				t.Fatalf("%s: nil best", label)
			}
			if got.Best.ID != want.Best.ID {
				t.Errorf("%s: best %q != %q", label, got.Best.ID, want.Best.ID)
			}
			if got.BestTime != want.BestTime {
				t.Errorf("%s: best time %v != %v", label, got.BestTime, want.BestTime)
			}
			if pair.killP != pair.resumeP {
				continue
			}
			assertSameOutcome(t, label, want, got)
			// The resumed run's final checkpoint must be byte-identical to the
			// uninterrupted run's.
			final, err := os.ReadFile(runstate.NewStore(dir, "test-run").Path())
			if err != nil {
				t.Fatal(err)
			}
			if string(final) != string(finals[pair.resumeP]) {
				t.Errorf("%s: final checkpoint differs from uninterrupted run", label)
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestResumeRejectsMismatchedRun refuses a checkpoint taken against different
// selection-relevant options or a different workload.
func TestResumeRejectsMismatchedRun(t *testing.T) {
	dir := t.TempDir()
	if _, err, _ := runCheckpointed(t, dir, 1, 1); !errors.Is(err, errKill) {
		t.Fatalf("expected kill, got %v", err)
	}
	store := runstate.NewStore(dir, "test-run")
	st, _, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}

	w, _ := workload.ByName("tpch-1")
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)

	opts := ckptOpts(1)
	opts.Seed = 999 // selection-relevant: different fingerprint
	opts.Resume = st
	tn := New(db, llm.NewSimClient(42), opts)
	if _, err := tn.Tune(context.Background(), w.Queries); !errors.Is(err, runstate.ErrCheckpointMismatch) {
		t.Errorf("option mismatch: got %v, want ErrCheckpointMismatch", err)
	}

	opts = ckptOpts(1)
	opts.Resume = st
	tn = New(backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware), llm.NewSimClient(42), opts)
	if _, err := tn.Tune(context.Background(), w.Queries[:3]); !errors.Is(err, runstate.ErrCheckpointMismatch) {
		t.Errorf("workload mismatch: got %v, want ErrCheckpointMismatch", err)
	}
}

// TestResumeTornWriteFallsBack truncates the live checkpoint (a torn write)
// and verifies the store falls back to the previous generation, from which
// the run still resumes to the correct outcome.
func TestResumeTornWriteFallsBack(t *testing.T) {
	baseDir := t.TempDir()
	want, err, _ := runCheckpointed(t, baseDir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if _, rerr, _ := runCheckpointed(t, dir, 1, 3); !errors.Is(rerr, errKill) {
		t.Fatalf("expected kill, got %v", rerr)
	}
	store := runstate.NewStore(dir, "test-run")
	data, err := os.ReadFile(store.Path())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.Path(), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	st, fellBack, err := store.Load()
	if err != nil {
		t.Fatalf("load with torn live file: %v", err)
	}
	if !fellBack {
		t.Fatal("expected fallback to previous generation")
	}

	w, _ := workload.ByName("tpch-1")
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	opts := ckptOpts(1)
	opts.Resume = st
	tn := New(db, llm.NewSimClient(42), opts)
	got, err := tn.Tune(context.Background(), w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, "torn-write fallback resume", want, got)
}
