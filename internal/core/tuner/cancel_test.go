package tuner

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"lambdatune/internal/backend"
	"lambdatune/internal/core/selector"
	"lambdatune/internal/engine"
	"lambdatune/internal/llm"
	"lambdatune/internal/workload"
)

// cancelAfter cancels the run from inside the engine once n query
// executions have happened, then counts how many more executions follow.
// The contract under test: evaluation stops within one query of ctx.Done().
// Exec hooks are shared by snapshot replicas, so the counters are atomic.
type cancelAfter struct {
	n      int64
	cancel context.CancelFunc
	execs  atomic.Int64
	after  atomic.Int64
}

func (c *cancelAfter) hook(q *engine.Query, seconds float64) {
	execs := c.execs.Add(1)
	if execs == c.n {
		c.cancel()
	}
	if execs > c.n {
		c.after.Add(1)
	}
}

func TestTuneCancellationStopsWithinOneQuery(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		w := workload.TPCH(1)
		db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
		ctx, cancel := context.WithCancel(context.Background())
		ca := &cancelAfter{n: 5, cancel: cancel}
		db.SetExecHook(ca.hook)

		opts := DefaultOptions()
		opts.Selector.Parallelism = parallelism
		goroutinesBefore := runtime.NumGoroutine()
		res, err := New(db, llm.NewSimClient(1), opts).Tune(ctx, w.Queries)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism=%d: err = %v, want context.Canceled", parallelism, err)
		}
		if res == nil {
			t.Fatalf("parallelism=%d: partial result dropped on cancellation", parallelism)
		}
		// Sequentially at most 1 execution may follow the cancel; with N
		// workers each in-flight query may finish, so allow one per worker.
		if after := ca.after.Load(); after > int64(parallelism) {
			t.Errorf("parallelism=%d: %d executions after cancel, want <= %d",
				parallelism, after, parallelism)
		}
		// No leaked evaluation workers: the goroutine count returns to the
		// baseline (with retries — the runtime needs a moment to reap).
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > goroutinesBefore && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if now := runtime.NumGoroutine(); now > goroutinesBefore {
			t.Errorf("parallelism=%d: %d goroutines leaked", parallelism, now-goroutinesBefore)
		}
		cancel()
	}
}

// TestTuneCancelledBeforeSampling: a context cancelled before the run makes
// Tune return immediately with the context error.
func TestTuneCancelledBeforeSampling(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(db, llm.NewSimClient(1), DefaultOptions()).Tune(ctx, w.Queries)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSelectorBudgetExhausted: a starved round budget surfaces the typed
// sentinel through Tune's wrapped error.
func TestSelectorBudgetExhausted(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	opts := DefaultOptions()
	opts.Selector.InitialTimeout = 1e-6
	opts.Selector.Alpha = 2
	opts.Selector.MaxRounds = 1
	opts.Selector.AdaptiveTimeout = false
	_, err := New(db, llm.NewSimClient(1), opts).Tune(context.Background(), w.Queries)
	if err == nil {
		t.Fatal("want budget-exhausted error")
	}
	if !errors.Is(err, selector.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want selector.ErrBudgetExhausted", err)
	}
}
