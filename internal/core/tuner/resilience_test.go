package tuner

import (
	"context"
	"errors"
	"strings"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/faults"
	"lambdatune/internal/llm"
	"lambdatune/internal/workload"
)

// TestTuneAggregatedSampleErrors pins the all-samples-dropped error contract:
// the returned error wraps every per-sample failure, not just the last one.
func TestTuneAggregatedSampleErrors(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	tn := New(db, errClient{}, DefaultOptions())
	_, err := tn.Tune(context.Background(), w.Queries)
	if err == nil {
		t.Fatal("want error when every sample drops")
	}
	if !errors.Is(err, ErrNoUsableSample) {
		t.Fatalf("error should match ErrNoUsableSample: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "0 of 5 samples usable") {
		t.Fatalf("missing summary: %v", msg)
	}
	for _, want := range []string{"sample 1:", "sample 3:", "sample 5:"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error does not wrap %q: %v", want, msg)
		}
	}
}

// TestTuneMixedFailuresKeepsSurvivors: when some samples drop and others
// survive, tuning proceeds with the survivors and reports the drops.
type failEveryOther struct {
	inner llm.Client
	n     int
}

func (f *failEveryOther) Complete(ctx context.Context, prompt string) (string, error) {
	f.n++
	if f.n%2 == 1 {
		return "", &faults.Error{Kind: faults.LLMTransient}
	}
	return f.inner.Complete(ctx, prompt)
}
func (f *failEveryOther) Name() string { return "every-other" }

func TestTuneMixedFailuresKeepsSurvivors(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	opts := DefaultOptions()
	opts.MaxRetries = 0 // every odd call drops its sample outright
	tn := New(db, &failEveryOther{inner: llm.NewSimClient(42)}, opts)
	res, err := tn.Tune(context.Background(), w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best despite surviving samples")
	}
	if res.Faults.DroppedSamples != 3 {
		t.Fatalf("DroppedSamples = %d, want 3 (calls 1,3,5)", res.Faults.DroppedSamples)
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("candidates = %d, want 2", len(res.Candidates))
	}
	if !res.Faults.Any() {
		t.Fatal("FaultReport.Any() should be true")
	}
}

// TestTuneSeedDefaultFloor: with a client whose only parseable output is
// worse than the default configuration, SeedDefault guarantees the default
// wins and the run reports the degradation.
type badConfigClient struct{}

func (badConfigClient) Complete(context.Context, string) (string, error) {
	// Parseable but harmful: crippled memory and planner settings.
	return "ALTER SYSTEM SET work_mem = '64kB';\n" +
		"ALTER SYSTEM SET shared_buffers = '128kB';\n" +
		"ALTER SYSTEM SET enable_hashjoin = 'off';\n" +
		"ALTER SYSTEM SET enable_mergejoin = 'off';\n", nil
}
func (badConfigClient) Name() string { return "bad-config" }

func TestTuneSeedDefaultFloor(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	defaultTime := db.WorkloadSeconds(w.Queries)
	tn := New(db, badConfigClient{}, DefaultOptions())
	res, err := tn.Tune(context.Background(), w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("Best is nil despite the seeded default")
	}
	if res.Best.ID != DefaultConfigID {
		t.Fatalf("best = %s, want the seeded default", res.Best.ID)
	}
	if !res.Faults.DegradedToDefault {
		t.Fatal("DegradedToDefault not reported")
	}
	if res.BestTime > defaultTime*1.0001 {
		t.Fatalf("best time %v worse than default %v", res.BestTime, defaultTime)
	}
	// The LLM candidates stay in Candidates; the default is not one of them.
	for _, c := range res.Candidates {
		if c.ID == DefaultConfigID {
			t.Fatal("default configuration leaked into Candidates")
		}
	}
}

// TestTuneSeedDefaultOff preserves the legacy behavior for ablations.
func TestTuneSeedDefaultOff(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	opts := DefaultOptions()
	opts.SeedDefault = false
	tn := New(db, llm.NewSimClient(42), opts)
	res, err := tn.Tune(context.Background(), w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil && res.Best.ID == DefaultConfigID {
		t.Fatal("default seeded despite SeedDefault=false")
	}
}

// TestTuneResilienceWrapsClient: with Resilience set, transient failures are
// absorbed by the retry layer, telemetry lands in the FaultReport, and the
// waiting shows up in TuningSeconds on the virtual clock.
func TestTuneResilienceWrapsClient(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	client := &flakyClient{failures: 3, inner: llm.NewSimClient(42)}
	opts := DefaultOptions()
	opts.MaxRetries = 0 // tuner-level retries off: the resilient layer must absorb
	opts.Resilience = &llm.ResilienceOptions{}
	tn := New(db, client, opts)
	res, err := tn.Tune(context.Background(), w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || len(res.Candidates) != 5 {
		t.Fatalf("run degraded: best=%v candidates=%d", res.Best, len(res.Candidates))
	}
	f := res.Faults
	if f.LLMFailures != 3 || f.LLMRetries < 3 {
		t.Fatalf("fault report = %+v, want 3 failures absorbed by retries", f)
	}
	if f.BackoffSeconds <= 0 {
		t.Fatal("backoff waits not recorded")
	}
	if res.TuningSeconds < f.BackoffSeconds {
		t.Fatalf("TuningSeconds %v excludes the %vs backoff", res.TuningSeconds, f.BackoffSeconds)
	}
}

// TestTuneResilienceBackoffCostsTuningTime compares a faulty run against a
// clean one: the faulty run must be slower by at least its waiting time.
func TestTuneResilienceBackoffCostsTuningTime(t *testing.T) {
	tune := func(failures int) *Result {
		w := workload.TPCH(1)
		db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
		opts := DefaultOptions()
		opts.Resilience = &llm.ResilienceOptions{}
		tn := New(db, &flakyClient{failures: failures, inner: llm.NewSimClient(42)}, opts)
		res, err := tn.Tune(context.Background(), w.Queries)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean, faulty := tune(0), tune(3)
	extra := faulty.TuningSeconds - clean.TuningSeconds
	waited := faulty.Faults.BackoffSeconds + faulty.Faults.FailedCallSeconds
	if waited <= 0 {
		t.Fatalf("faulty run reports no waiting: %+v", faulty.Faults)
	}
	if extra < waited-1e-9 {
		t.Fatalf("tuning cost grew by %vs but the run waited %vs", extra, waited)
	}
}
