package evaluator

import (
	"context"
	"math"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/workload"
)

func setup(t *testing.T) (*backend.Sim, *workload.Workload) {
	t.Helper()
	w := workload.TPCH(1)
	return backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware), w
}

func goodConfig() *engine.Config {
	return &engine.Config{
		ID: "good",
		Params: map[string]string{
			"shared_buffers":       "15GB",
			"work_mem":             "1GB",
			"effective_cache_size": "45GB",
			"random_page_cost":     "1.1",
		},
		Indexes: []engine.IndexDef{
			engine.NewIndexDef("lineitem", "l_orderkey"),
			engine.NewIndexDef("orders", "o_custkey"),
			engine.NewIndexDef("lineitem", "l_partkey"),
		},
	}
}

func TestQueryIndexMap(t *testing.T) {
	_, w := setup(t)
	cfg := goodConfig()
	m := QueryIndexMap(w.Queries, cfg)
	// Q1 (pure lineitem scan, no joins on l_orderkey... it filters
	// l_shipdate only) gets no l_orderkey index? Q1 has no joins; filters on
	// l_shipdate — so no relevant indexes.
	q1 := w.Queries[0]
	if len(m[q1]) != 0 {
		t.Errorf("Q1 relevant indexes: %v", m[q1])
	}
	// Q3 joins lineitem.l_orderkey=orders.o_orderkey and
	// customer.c_custkey=orders.o_custkey → both lineitem(l_orderkey) and
	// orders(o_custkey) are relevant.
	q3 := w.Queries[2]
	keys := map[string]bool{}
	for _, d := range m[q3] {
		keys[d.Key()] = true
	}
	if !keys["lineitem(l_orderkey)"] || !keys["orders(o_custkey)"] {
		t.Errorf("Q3 relevant indexes: %v", m[q3])
	}
}

func TestEvaluateCompletesWithGenerousTimeout(t *testing.T) {
	db, w := setup(t)
	e := New(db)
	cfg := goodConfig()
	if err := e.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	meta := NewConfigMeta()
	e.Evaluate(context.Background(), cfg, w.Queries, math.Inf(1), meta)
	if !meta.IsComplete {
		t.Fatal("not complete with infinite timeout")
	}
	if len(meta.Completed) != len(w.Queries) {
		t.Errorf("completed %d of %d", len(meta.Completed), len(w.Queries))
	}
	if meta.Time <= 0 || meta.IndexTime <= 0 {
		t.Errorf("bookkeeping: %+v", meta)
	}
}

func TestEvaluateRespectsTimeout(t *testing.T) {
	db, w := setup(t)
	e := New(db)
	cfg := goodConfig()
	if err := e.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	meta := NewConfigMeta()
	e.Evaluate(context.Background(), cfg, w.Queries, 0.5, meta)
	if meta.IsComplete {
		t.Fatal("22 TPC-H queries cannot finish in 0.5 simulated seconds")
	}
	if len(meta.Completed) == len(w.Queries) {
		t.Error("all queries completed despite timeout")
	}
	// Accumulated completed time never exceeds the budget.
	if meta.Time > 0.5 {
		t.Errorf("completed time %v exceeds timeout", meta.Time)
	}
}

func TestEvaluateLazyCreatesOnlyNeededIndexes(t *testing.T) {
	db, w := setup(t)
	e := New(db)
	cfg := goodConfig()
	if err := e.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	meta := NewConfigMeta()
	// Run only Q1 (no relevant indexes): nothing should be created.
	e.Evaluate(context.Background(), cfg, w.Queries[:1], math.Inf(1), meta)
	if got := len(db.Indexes()); got != 0 {
		t.Errorf("lazy creation made %d indexes for an index-free query", got)
	}
	if meta.IndexTime != 0 {
		t.Errorf("index time %v", meta.IndexTime)
	}
}

func TestEvaluateEagerCreatesAll(t *testing.T) {
	db, w := setup(t)
	e := New(db)
	e.LazyIndexes = false
	cfg := goodConfig()
	if err := e.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	meta := NewConfigMeta()
	e.Evaluate(context.Background(), cfg, w.Queries[:1], math.Inf(1), meta)
	if got := len(db.Indexes()); got != len(cfg.Indexes) {
		t.Errorf("eager creation made %d of %d indexes", got, len(cfg.Indexes))
	}
}

func TestEvaluateSkipsExistingIndexes(t *testing.T) {
	db, w := setup(t)
	e := New(db)
	cfg := goodConfig()
	if err := e.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	meta := NewConfigMeta()
	e.Evaluate(context.Background(), cfg, w.Queries, math.Inf(1), meta)
	firstIndexTime := meta.IndexTime
	// Second pass without Apply: indexes still exist, so no re-creation.
	meta2 := NewConfigMeta()
	e.Evaluate(context.Background(), cfg, w.Queries, math.Inf(1), meta2)
	if meta2.IndexTime != 0 {
		t.Errorf("indexes recreated: %v (first pass %v)", meta2.IndexTime, firstIndexTime)
	}
}

func TestApplyDropsTransientIndexes(t *testing.T) {
	db, _ := setup(t)
	e := New(db)
	db.CreatePermanentIndex(engine.NewIndexDef("part", "p_partkey"))
	db.CreateIndex(engine.NewIndexDef("lineitem", "l_suppkey"))
	if err := e.Apply(goodConfig()); err != nil {
		t.Fatal(err)
	}
	if db.HasIndex(engine.NewIndexDef("lineitem", "l_suppkey")) {
		t.Error("transient index survived Apply")
	}
	if !db.HasIndex(engine.NewIndexDef("part", "p_partkey")) {
		t.Error("permanent index dropped by Apply")
	}
}

func TestConfigMetaThroughput(t *testing.T) {
	m := NewConfigMeta()
	if m.Throughput() != 0 {
		t.Error("zero-time throughput")
	}
	m.Time = 2
	m.Completed["a"] = true
	m.Completed["b"] = true
	if m.Throughput() != 1 {
		t.Errorf("throughput: %v", m.Throughput())
	}
}

func TestIndexesSpeedUpWorkload(t *testing.T) {
	db, w := setup(t)
	e := New(db)
	defCfg := &engine.Config{ID: "default", Params: map[string]string{}}
	if err := e.Apply(defCfg); err != nil {
		t.Fatal(err)
	}
	m1 := NewConfigMeta()
	e.Evaluate(context.Background(), defCfg, w.Queries, math.Inf(1), m1)

	cfg := goodConfig()
	if err := e.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	m2 := NewConfigMeta()
	e.Evaluate(context.Background(), cfg, w.Queries, math.Inf(1), m2)
	if m2.Time >= m1.Time {
		t.Errorf("tuned config not faster: %v vs default %v", m2.Time, m1.Time)
	}
}

func TestSchedulerOffStillCorrect(t *testing.T) {
	db, w := setup(t)
	e := New(db)
	e.UseScheduler = false
	cfg := goodConfig()
	if err := e.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	meta := NewConfigMeta()
	e.Evaluate(context.Background(), cfg, w.Queries, math.Inf(1), meta)
	if !meta.IsComplete || len(meta.Completed) != len(w.Queries) {
		t.Errorf("scheduler-off evaluation broken: %+v", meta)
	}
}
