package evaluator

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tenantOfJob is the production mapping used by the Runtime: everything
// before the first '#' is the tenant.
func tenantOfJob(job string) string {
	if i := strings.IndexByte(job, '#'); i >= 0 {
		return job[:i]
	}
	return job
}

// waitForWaiters blocks until the gate holds exactly n queued waiters, so
// tests can pin a deterministic arrival order before triggering grants.
func waitForWaiters(t *testing.T, s *SharedSlots, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.waiterCount() != n {
		if time.Now().After(deadline) {
			t.Fatalf("gate never reached %d waiters (have %d)", n, s.waiterCount())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// enqueueSerial launches one waiter for job and waits until it is queued.
// Granted waiters append their job label to order and chain the next grant
// by releasing, so the recorded order is the gate's exact grant order.
func enqueueSerial(t *testing.T, s *SharedSlots, wg *sync.WaitGroup, mu *sync.Mutex, order *[]string, job string) {
	t.Helper()
	before := s.waiterCount()
	wg.Add(1)
	go func() {
		defer wg.Done()
		release, err := s.Acquire(context.Background(), job)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		*order = append(*order, job)
		mu.Unlock()
		release()
	}()
	waitForWaiters(t, s, before+1)
}

// TestWeightedSlotsGrantOrder pins the deficit-round-robin schedule: with
// tenant alpha at weight 3 and beta at weight 1 both backlogged, grants must
// follow alpha,alpha,alpha,beta repeating — a deterministic function of the
// (serialized) arrival order.
func TestWeightedSlotsGrantOrder(t *testing.T) {
	weights := map[string]int{"alpha": 3, "beta": 1}
	s := NewWeightedSlots(SlotsConfig{
		Capacity: 1,
		TenantOf: tenantOfJob,
		Weight:   func(tn string) int { return weights[tn] },
	})
	hold, err := s.Acquire(context.Background(), "warm#0")
	if err != nil {
		t.Fatal(err)
	}

	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	// Arrival order fixes the DRR ring: alpha first, then beta.
	for i := 0; i < 6; i++ {
		enqueueSerial(t, s, &wg, &mu, &order, "alpha#1")
	}
	for i := 0; i < 2; i++ {
		enqueueSerial(t, s, &wg, &mu, &order, "beta#1")
	}

	hold() // kick off the serial grant chain
	wg.Wait()

	got := make([]string, len(order))
	for i, j := range order {
		got[i] = tenantOfJob(j)
	}
	want := []string{"alpha", "alpha", "alpha", "beta", "alpha", "alpha", "alpha", "beta"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("grant order = %v, want %v", got, want)
	}
}

// TestWeightedSlotsWithinTenantRoundRobin asserts a tenant's own jobs share
// its slots round-robin: a one-worker job is served on the tenant's second
// grant even when a sibling job queued four workers first.
func TestWeightedSlotsWithinTenantRoundRobin(t *testing.T) {
	s := NewWeightedSlots(SlotsConfig{Capacity: 1, TenantOf: tenantOfJob})
	hold, err := s.Acquire(context.Background(), "warm#0")
	if err != nil {
		t.Fatal(err)
	}

	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		enqueueSerial(t, s, &wg, &mu, &order, "acme#big")
	}
	enqueueSerial(t, s, &wg, &mu, &order, "acme#small")

	hold()
	wg.Wait()

	want := []string{"acme#big", "acme#small", "acme#big", "acme#big", "acme#big"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("grant order = %v, want %v", order, want)
	}
}

// TestWeightedSlotsCancelMidRotation cancels a queued waiter whose tenant
// sits mid-rotation and asserts the remaining schedule is unaffected: no
// lost slot, no stuck rotation pointer.
func TestWeightedSlotsCancelMidRotation(t *testing.T) {
	s := NewWeightedSlots(SlotsConfig{Capacity: 1, TenantOf: tenantOfJob})
	hold, err := s.Acquire(context.Background(), "warm#0")
	if err != nil {
		t.Fatal(err)
	}

	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	enqueueSerial(t, s, &wg, &mu, &order, "a#1")
	enqueueSerial(t, s, &wg, &mu, &order, "b#1")
	enqueueSerial(t, s, &wg, &mu, &order, "c#1")

	// Cancel tenant b's only waiter while it is queued mid-ring.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, "b#2")
		errc <- err
	}()
	waitForWaiters(t, s, 4)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("canceled waiter returned %v", err)
	}
	waitForWaiters(t, s, 3)

	hold()
	wg.Wait()

	want := []string{"a#1", "b#1", "c#1"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("grant order after cancel = %v, want %v", order, want)
	}
}

// TestWeightedSlotsStress is the weighted-grant stress/fuzz satellite: many
// goroutines across tenants with random seeded weights, cancels mid-wait,
// and jobs joining and leaving. Asserts no lost slots (full capacity is
// re-acquirable afterward), no starvation (every tenant is granted), and a
// bounded holder count throughout. Run under -race in tier 1.
func TestWeightedSlotsStress(t *testing.T) {
	const (
		capacity = 4
		tenants  = 5
		workers  = 40
		rounds   = 25
	)
	rng := rand.New(rand.NewSource(16))
	weights := make(map[string]int, tenants)
	for i := 0; i < tenants; i++ {
		weights[fmt.Sprintf("t%d", i)] = 1 + rng.Intn(5)
	}
	s := NewWeightedSlots(SlotsConfig{
		Capacity: capacity,
		TenantOf: tenantOfJob,
		Weight:   func(tn string) int { return weights[tn] },
	})

	var inUse, peak atomic.Int64
	grants := make([]atomic.Int64, tenants)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		tenant := w % tenants
		seed := int64(100 + w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				// Jobs join and leave: the label changes across iterations.
				job := fmt.Sprintf("t%d#j%d", tenant, r.Intn(3))
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if r.Intn(4) == 0 {
					// Sometimes cancel mid-wait with a tiny deadline.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(r.Intn(200))*time.Microsecond)
				}
				release, err := s.Acquire(ctx, job)
				cancel()
				if err != nil {
					continue // canceled mid-wait; must not leak or lose a slot
				}
				n := inUse.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				if r.Intn(8) == 0 {
					time.Sleep(time.Duration(r.Intn(50)) * time.Microsecond)
				}
				grants[tenant].Add(1)
				inUse.Add(-1)
				release()
				if r.Intn(16) == 0 {
					release() // double release must stay idempotent under load
				}
			}
		}()
	}
	wg.Wait()

	if p := peak.Load(); p > capacity {
		t.Fatalf("observed %d concurrent holders, cap %d", p, capacity)
	}
	for i := range grants {
		if grants[i].Load() == 0 {
			t.Fatalf("tenant t%d starved: zero grants (weights %v)", i, weights)
		}
	}
	if w := s.waiterCount(); w != 0 {
		t.Fatalf("%d waiters leaked after shutdown", w)
	}
	// No lost slots: the full capacity must be immediately re-acquirable.
	ctx, cancelAll := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelAll()
	var releases []func()
	for i := 0; i < capacity; i++ {
		release, err := s.Acquire(ctx, "post#check")
		if err != nil {
			t.Fatalf("slot %d lost after stress: %v", i, err)
		}
		releases = append(releases, release)
	}
	for _, r := range releases {
		r()
	}
}

// FuzzWeightedSlots drives a random operation sequence — acquires across
// fuzzed tenants/weights, releases, and cancels — and asserts the semaphore
// invariants hold: holders never exceed capacity, no waiter or slot leaks,
// and full capacity is re-acquirable at the end.
func FuzzWeightedSlots(f *testing.F) {
	f.Add([]byte{2, 0, 1, 5, 2, 9, 1, 1, 0})
	f.Add([]byte{1, 3, 3, 3, 1, 2, 0, 7, 4, 1, 1, 1})
	f.Add([]byte{4, 250, 17, 33, 0, 0, 1, 2, 99, 5, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		capacity := 1 + int(data[0])%4
		s := NewWeightedSlots(SlotsConfig{
			Capacity: capacity,
			TenantOf: tenantOfJob,
			Weight:   func(tn string) int { return len(tn) % 7 }, // exercises <1 clamp
		})

		type pending struct {
			cancel  context.CancelFunc
			done    chan func() // receives the release func, or closes on cancel
			granted func()
		}
		var held []func()
		var waiting []*pending
		var inUse, peak atomic.Int64

		settle := func(p *pending) {
			// After cancel, the Acquire either errored (channel closed) or
			// had already won the race (release func delivered).
			if rel, ok := <-p.done; ok && rel != nil {
				rel()
			}
		}
		for _, b := range data[1:] {
			switch b % 3 {
			case 0: // acquire
				job := fmt.Sprintf("t%d#j%d", int(b)%5, int(b/3)%3)
				ctx, cancel := context.WithCancel(context.Background())
				p := &pending{cancel: cancel, done: make(chan func(), 1)}
				go func() {
					release, err := s.Acquire(ctx, job)
					if err != nil {
						close(p.done)
						return
					}
					n := inUse.Add(1)
					for {
						pk := peak.Load()
						if n <= pk || peak.CompareAndSwap(pk, n) {
							break
						}
					}
					p.done <- func() {
						inUse.Add(-1)
						release()
					}
				}()
				select {
				case rel, ok := <-p.done:
					if ok && rel != nil {
						held = append(held, rel)
					}
				case <-time.After(2 * time.Millisecond):
					waiting = append(waiting, p)
				}
			case 1: // release the oldest held slot
				if len(held) > 0 {
					held[0]()
					held = held[1:]
				}
			case 2: // cancel the oldest waiter
				if len(waiting) > 0 {
					p := waiting[0]
					waiting = waiting[1:]
					p.cancel()
					settle(p)
				}
			}
		}
		for _, p := range waiting {
			p.cancel()
			settle(p)
		}
		for _, rel := range held {
			rel()
		}
		if p := peak.Load(); p > int64(capacity) {
			t.Fatalf("observed %d concurrent holders, cap %d", p, capacity)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		var releases []func()
		for i := 0; i < capacity; i++ {
			release, err := s.Acquire(ctx, "post#check")
			if err != nil {
				t.Fatalf("slot %d lost: %v", i, err)
			}
			releases = append(releases, release)
		}
		for _, r := range releases {
			r()
		}
		if w := s.waiterCount(); w != 0 {
			t.Fatalf("%d waiters leaked", w)
		}
	})
}
