package evaluator

import (
	"context"
	"log"
	"sync"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/obs"
)

// Pool evaluates the candidate configurations of one selector round
// concurrently, one backend snapshot per worker — modeling the N parallel
// DBMS replicas the paper's EC2 testbed would allow (DESIGN.md §7).
//
// Determinism: tasks are assigned statically (task i runs on worker i mod
// Workers) and every worker processes its tasks sequentially on its own
// snapshot, so per-candidate results are independent of goroutine
// scheduling. Each ConfigMeta is touched by exactly one worker per round.
//
// Clock-merge rule: per-candidate runtimes come from each worker's own
// virtual clock; the round's elapsed tuning time is the max over workers —
// replicas run in parallel, so the round is as long as its slowest replica.
//
// Degradation: parallel evaluation needs the backend.Snapshotter capability.
// When the backend cannot clone, Run logs the reason once and falls back to
// evaluating the round's tasks sequentially on the primary backend.
type Pool struct {
	// DB is the primary backend snapshots are taken from. Its clock
	// advances by each round's merged elapsed time.
	DB backend.Backend
	// Workers is the number of concurrent replicas (values < 1 mean 1).
	Workers int
	// UseScheduler / LazyIndexes / Seed / Memo configure the per-worker
	// evaluators, mirroring Evaluator. The memo is shared across workers
	// (it is concurrency-safe), so one worker's result serves every replica
	// recomputing the same inputs.
	UseScheduler bool
	LazyIndexes  bool
	Seed         int64
	Memo         *Memo
	// Trace/Metrics are handed to the per-worker evaluators so replica work
	// records under each task's candidate span. Trace-shape determinism
	// holds because a candidate span and all its children are touched by
	// exactly the one worker its task is statically assigned to.
	Trace   *obs.Tracer
	Metrics *obs.Registry
	// RecordTimes mirrors Evaluator.RecordTimes onto every worker (racing's
	// surrogate needs per-query observations from replica work too).
	RecordTimes bool
	// Owner / Slots mirror Evaluator.Owner and Evaluator.Slots onto every
	// worker: all of a job's workers lease from the Runtime's shared gate
	// under the job's name. Wall-clock only — worker count and clock merging
	// are unchanged at any slot capacity.
	Owner string
	Slots *SharedSlots
	// Logf, when set, receives the pool's degradation notices (default
	// log.Printf).
	Logf func(format string, args ...any)

	warnedNoSnapshot bool
}

// NewPool builds a pool that evaluates with e's settings on e's database.
func NewPool(e *Evaluator, workers int) *Pool {
	return &Pool{
		DB:           e.DB,
		Workers:      workers,
		UseScheduler: e.UseScheduler,
		LazyIndexes:  e.LazyIndexes,
		Seed:         e.Seed,
		Memo:         e.Memo,
		Trace:        e.Trace,
		Metrics:      e.Metrics,
		RecordTimes:  e.RecordTimes,
		Owner:        e.Owner,
		Slots:        e.Slots,
	}
}

// Task is one candidate evaluation of a round: run Config against the
// not-yet-completed Queries with the per-configuration Timeout, updating
// Meta in place. Tasks with Timeout <= 0 are provably suboptimal
// (Algorithm 2's best-based tightening) and are skipped.
type Task struct {
	Config  *engine.Config
	Queries []*engine.Query
	Timeout float64
	Meta    *ConfigMeta
	// Span, when set, is the candidate's trace span: the owning worker tags
	// it with its id, fills the verdict attributes, records query and
	// index-build children under it, and ends it.
	Span *obs.Span
	// FreeIndexes lists index keys whose build cost another candidate in the
	// same racing rung pays; this task creates them at zero virtual cost
	// (see Evaluator.FreeIndexes). Nil outside racing rungs.
	FreeIndexes map[string]bool
}

// Run evaluates one round's tasks. It returns the round's elapsed virtual
// time — the max over workers — after advancing the primary clock by it and
// folding the snapshots' operation counters back into the primary
// (backend.Snapshotter). A worker whose Apply fails marks the task's meta
// incomplete and moves on, exactly as the sequential path does.
//
// A backend without the Snapshotter capability is evaluated sequentially on
// the primary instance instead (logged once via Logf); results are identical,
// only the round's elapsed time follows the single-instance accounting.
//
// Cancelling ctx stops every worker before its next query execution; Run
// still merges the partial progress (metas stay resumable) and returns
// ctx.Err().
func (p *Pool) Run(ctx context.Context, tasks []Task) (float64, error) {
	if len(tasks) == 0 {
		return 0, ctx.Err()
	}
	sn, ok := p.DB.(backend.Snapshotter)
	if !ok {
		if !p.warnedNoSnapshot {
			p.warnedNoSnapshot = true
			p.logf("evaluator: backend %T does not support snapshotting; evaluating rounds sequentially on the primary instance", p.DB)
		}
		return p.runSequential(ctx, tasks)
	}
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	snaps := make([]backend.Backend, workers)
	elapsed := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		snap := sn.Snapshot()
		snaps[w] = snap
		wg.Add(1)
		go func(w int, snap backend.Backend) {
			defer wg.Done()
			ev := &Evaluator{
				DB:           snap,
				UseScheduler: p.UseScheduler,
				LazyIndexes:  p.LazyIndexes,
				Seed:         p.Seed,
				Memo:         p.Memo,
				Trace:        p.Trace,
				Metrics:      p.Metrics,
				RecordTimes:  p.RecordTimes,
				Owner:        p.Owner,
				Slots:        p.Slots,
			}
			start := snap.Clock().Now()
			for i := w; i < len(tasks); i += workers {
				if ctx.Err() != nil {
					break
				}
				runTask(ctx, ev, tasks[i], w)
			}
			elapsed[w] = snap.Clock().Now() - start
		}(w, snap)
	}
	wg.Wait()

	var roundElapsed float64
	for _, e := range elapsed {
		if e > roundElapsed {
			roundElapsed = e
		}
	}
	for _, snap := range snaps {
		sn.AbsorbSnapshot(snap)
	}
	p.DB.Clock().Advance(roundElapsed)
	return roundElapsed, ctx.Err()
}

// runSequential is the degraded path for non-Snapshotter backends: the
// round's tasks run in order on the primary instance, whose clock advances
// directly; elapsed is the primary clock's delta over the round.
func (p *Pool) runSequential(ctx context.Context, tasks []Task) (float64, error) {
	ev := &Evaluator{
		DB:           p.DB,
		UseScheduler: p.UseScheduler,
		LazyIndexes:  p.LazyIndexes,
		Seed:         p.Seed,
		Memo:         p.Memo,
		Trace:        p.Trace,
		Metrics:      p.Metrics,
		RecordTimes:  p.RecordTimes,
		Owner:        p.Owner,
		Slots:        p.Slots,
	}
	start := p.DB.Clock().Now()
	for _, t := range tasks {
		if ctx.Err() != nil {
			break
		}
		runTask(ctx, ev, t, 0)
	}
	return p.DB.Clock().Now() - start, ctx.Err()
}

// runTask applies and evaluates one candidate, marking unusable
// configurations permanently incomplete like the sequential selector path.
// The task's candidate span (if any) is owned by this worker from here on:
// it gets the worker id, the evaluation children, the verdict attributes,
// and its End — all stamped from the worker's own (replica) clock.
func runTask(ctx context.Context, ev *Evaluator, t Task, worker int) {
	clock := ev.DB.Clock()
	t.Span.SetAttrs(obs.Int("worker", worker))
	ev.Span = t.Span
	defer func() { ev.Span = nil }()
	if t.Timeout <= 0 {
		t.Span.SetAttrs(obs.Bool("skipped", true))
		t.Span.End(clock.Now())
		return
	}
	if err := ev.Apply(t.Config); err != nil {
		t.Meta.IsComplete = false
		t.Span.SetAttrs(obs.Bool("apply_failed", true))
		t.Span.End(clock.Now())
		return
	}
	ev.FreeIndexes = t.FreeIndexes
	defer func() { ev.FreeIndexes = nil }()
	ev.Evaluate(ctx, t.Config, t.Queries, t.Timeout, t.Meta)
	t.Span.SetAttrs(obs.Bool("complete", t.Meta.IsComplete),
		obs.Float("time", t.Meta.Time), obs.Float("index_time", t.Meta.IndexTime))
	t.Span.End(clock.Now())
}

// logf routes degradation notices to Logf or the standard logger.
func (p *Pool) logf(format string, args ...any) {
	if p.Logf != nil {
		p.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}
