package evaluator

import (
	"context"
	"log/slog"
	"sync"
	"time"

	"lambdatune/internal/obs"
)

// SharedSlots is the Runtime's cross-job evaluation admission gate: a
// weighted-fair counting semaphore that bounds how many evaluation workers
// execute simulated queries concurrently across every job sharing a Runtime.
//
// The gate is strictly a wall-clock throttle. Each job keeps its logical
// Parallelism — the pool still spawns Parallelism workers and merges their
// virtual clocks identically — a slot only decides when a worker's host CPU
// burst runs. Virtual-clock outcomes are therefore byte-identical at any
// slot count and any weight assignment, including zero contention (see the
// pool's determinism notes).
//
// Fairness is two-level and starvation-free:
//
//   - Across tenants, freed slots are granted by deficit round-robin: each
//     tenant accrues credit proportional to its weight when its rotation
//     turn comes up and spends one credit per slot, so a weight-3 tenant
//     receives three slots for every one a weight-1 tenant gets while both
//     are backlogged. Credit is capped at the weight (no burst hoarding) and
//     a tenant's turn always tops it up to at least one, so every waiting
//     tenant is served within one full rotation — no weight assignment can
//     starve another tenant.
//   - Within a tenant, the tenant's jobs are served round-robin with per-job
//     FIFO queues, so a job with many workers cannot starve a sibling job
//     with one.
//
// The grant order is a deterministic function of the operation sequence
// (enqueue, cancel, release), which the seeded scheduler tests pin.
//
// A nil *SharedSlots is a no-op gate (Acquire returns immediately), so the
// single-run path pays one nil check and nothing else.
type SharedSlots struct {
	reg      *obs.Registry
	log      *slog.Logger
	tenantOf func(job string) string
	weight   func(tenant string) int

	mu      sync.Mutex
	cap     int
	inUse   int
	waiting int
	tenants map[string]*slotTenant
	ring    []string // tenants with pending waiters, in DRR rotation
	next    int      // ring index of the tenant served next
	// held counts the slots each tenant currently occupies, feeding the
	// per-tenant slots_occupancy_* gauges.
	held map[string]int
}

// slotTenant is one tenant's fairness state: its deficit-round-robin credit
// and the per-job FIFO queues its waiters sit in.
type slotTenant struct {
	name    string
	credit  int
	jobs    map[string][]chan struct{}
	jobRing []string // jobs with pending waiters, in round-robin rotation
	jobNext int
	waiters int
}

// SlotsConfig configures a weighted gate (see NewWeightedSlots).
type SlotsConfig struct {
	// Capacity bounds concurrent leases; <= 0 yields the nil no-op gate.
	Capacity int
	// TenantOf maps a job label to its fairness tenant. Nil means every job
	// is its own tenant — plain per-job round-robin, the pre-weight behavior.
	TenantOf func(job string) string
	// Weight returns a tenant's fair-share weight. Nil or values < 1 mean 1.
	Weight func(tenant string) int
	// Registry, when non-nil, receives the runtime_pool_* series plus the
	// per-tenant slots_queue_wait_seconds_* histograms and slots_occupancy_*
	// gauges.
	Registry *obs.Registry
	// Logger, when non-nil, records contended scheduler grants at Debug level
	// (uncontended fast-path acquires stay silent — they are the hot path).
	Logger *slog.Logger
}

// NewSharedSlots builds an unweighted gate admitting capacity concurrent
// evaluation workers: every job is its own tenant with weight 1, i.e. fair
// round-robin per job. capacity <= 0 returns nil — the unbounded no-op gate.
func NewSharedSlots(capacity int, reg *obs.Registry) *SharedSlots {
	return NewWeightedSlots(SlotsConfig{Capacity: capacity, Registry: reg})
}

// NewWeightedSlots builds a gate with per-tenant fair-share weights. A zero
// or negative capacity returns nil — the unbounded no-op gate.
func NewWeightedSlots(cfg SlotsConfig) *SharedSlots {
	if cfg.Capacity <= 0 {
		return nil
	}
	return &SharedSlots{
		cap:      cfg.Capacity,
		reg:      cfg.Registry,
		log:      cfg.Logger,
		tenantOf: cfg.TenantOf,
		weight:   cfg.Weight,
		tenants:  make(map[string]*slotTenant),
		held:     make(map[string]int),
	}
}

// tenantKey resolves a job label's fairness tenant.
func (s *SharedSlots) tenantKey(job string) string {
	if s.tenantOf == nil {
		return job
	}
	return s.tenantOf(job)
}

// weightOf resolves a tenant's weight, clamped to >= 1 so the DRR loop
// always makes progress and no tenant can be configured into starvation.
func (s *SharedSlots) weightOf(tenant string) int {
	if s.weight == nil {
		return 1
	}
	if w := s.weight(tenant); w > 1 {
		return w
	}
	return 1
}

// Acquire blocks until a slot is free (weighted fair-share grant) or ctx is
// done, and returns an idempotent release function. job attributes the wait
// to a fairness queue ("" is a valid shared anonymous queue).
func (s *SharedSlots) Acquire(ctx context.Context, job string) (func(), error) {
	if s == nil {
		return func() {}, nil
	}
	start := time.Now()
	tn := s.tenantKey(job)
	s.mu.Lock()
	if s.inUse < s.cap {
		s.inUse++
		inUse := s.inUse
		s.held[tn]++
		held := s.held[tn]
		s.mu.Unlock()
		s.observe(start, inUse, tn, held)
		return s.releaseFunc(tn), nil
	}
	t := s.tenants[tn]
	if t == nil {
		t = &slotTenant{name: tn, jobs: make(map[string][]chan struct{}, 2)}
		s.tenants[tn] = t
		s.ring = append(s.ring, tn)
	}
	ch := make(chan struct{})
	if len(t.jobs[job]) == 0 {
		t.jobRing = append(t.jobRing, job)
	}
	t.jobs[job] = append(t.jobs[job], ch)
	t.waiters++
	s.waiting++
	waiting := s.waiting
	s.mu.Unlock()
	if s.reg != nil {
		s.reg.Gauge("runtime_pool_waiters").Set(float64(waiting))
	}

	select {
	case <-ch:
		// The releaser transferred its slot to us (and moved the held count
		// to our tenant); inUse stays constant.
		s.mu.Lock()
		held := s.held[tn]
		s.mu.Unlock()
		s.observe(start, -1, tn, held)
		return s.releaseFunc(tn), nil
	case <-ctx.Done():
		s.mu.Lock()
		removed := s.removeWaiter(tn, job, ch)
		waiting := s.waiting
		s.mu.Unlock()
		if s.reg != nil {
			s.reg.Gauge("runtime_pool_waiters").Set(float64(waiting))
		}
		if !removed {
			// Lost the race: a slot was granted concurrently with the
			// cancellation. Hand it straight back.
			<-ch
			s.release(tn)
		}
		return nil, ctx.Err()
	}
}

// removeWaiter unlinks a canceled waiter from its tenant's job queue,
// pruning the empty job and tenant rotation entries. Caller holds s.mu; the
// return reports whether the waiter was still queued (false = it was granted
// concurrently and the caller must return the slot).
func (s *SharedSlots) removeWaiter(tenant, job string, ch chan struct{}) bool {
	t := s.tenants[tenant]
	if t == nil {
		return false
	}
	q := t.jobs[job]
	for i, c := range q {
		if c != ch {
			continue
		}
		q = append(q[:i:i], q[i+1:]...)
		t.jobs[job] = q
		t.waiters--
		s.waiting--
		if len(q) == 0 {
			delete(t.jobs, job)
			dropFromRing(&t.jobRing, &t.jobNext, job)
		}
		if t.waiters == 0 {
			delete(s.tenants, tenant)
			dropFromRing(&s.ring, &s.next, tenant)
		}
		return true
	}
	return false
}

// releaseFunc wraps release in a sync.Once so double-release (defer plus
// explicit) cannot corrupt the count. tenant is who held the slot.
func (s *SharedSlots) releaseFunc(tenant string) func() {
	var once sync.Once
	return func() { once.Do(func() { s.release(tenant) }) }
}

// release grants the freed slot to the next waiter chosen by the weighted
// fair-share rotation, or decrements inUse when nobody waits. from is the
// tenant returning the slot; a transfer moves its held count to the grantee.
func (s *SharedSlots) release(from string) {
	s.mu.Lock()
	if s.held[from]--; s.held[from] <= 0 {
		delete(s.held, from)
	}
	fromHeld := s.held[from]
	ch, tenant := s.grantLocked()
	if ch != nil {
		s.held[tenant]++
		tenantHeld := s.held[tenant]
		waiting := s.waiting
		s.mu.Unlock()
		close(ch) // transfer the slot without touching inUse — wake the
		// waiter before spending time on telemetry: the grantee's work, not
		// the granter's metric updates, is on the critical path.
		if s.reg != nil {
			s.reg.Gauge("runtime_pool_waiters").Set(float64(waiting))
			s.reg.Counter("runtime_pool_grants_total").Inc()
			if s.tenantOf != nil {
				s.reg.Counter("runtime_pool_tenant_grants_total_" + sanitizeMetric(tenant)).Inc()
			}
			s.reg.Gauge("slots_occupancy_" + sanitizeMetric(from)).Set(float64(fromHeld))
			s.reg.Gauge("slots_occupancy_" + sanitizeMetric(tenant)).Set(float64(tenantHeld))
		}
		if s.log != nil {
			s.log.Debug("slot granted", "tenant", tenant, "from", from, "waiting", waiting)
		}
		return
	}
	s.inUse--
	inUse := s.inUse
	s.mu.Unlock()
	if s.reg != nil {
		s.reg.Gauge("runtime_pool_slots_in_use").Set(float64(inUse))
		s.reg.Gauge("slots_occupancy_" + sanitizeMetric(from)).Set(float64(fromHeld))
	}
}

// grantLocked pops the next waiter per the deficit-round-robin rotation, or
// returns nil when nobody waits. Caller holds s.mu.
func (s *SharedSlots) grantLocked() (chan struct{}, string) {
	for len(s.ring) > 0 {
		if s.next >= len(s.ring) {
			s.next = 0
		}
		t := s.tenants[s.ring[s.next]]
		if t == nil || t.waiters == 0 {
			// Defensive: a tenant left its queues without leaving the ring.
			delete(s.tenants, s.ring[s.next])
			s.ring = append(s.ring[:s.next:s.next], s.ring[s.next+1:]...)
			continue
		}
		if t.credit < 1 {
			// The tenant's rotation turn starts: top up its deficit credit.
			// Credit never exceeds the weight (top-up only happens below 1),
			// so an idle-then-busy tenant cannot burst past its share.
			t.credit += s.weightOf(t.name)
		}
		ch := t.popWaiter()
		t.credit--
		s.waiting--
		if t.waiters == 0 {
			// The tenant's backlog is drained: drop it from the rotation and
			// forget its residual credit (classic DRR resets the deficit when
			// a queue empties, so credit cannot accrue while idle).
			delete(s.tenants, t.name)
			s.ring = append(s.ring[:s.next:s.next], s.ring[s.next+1:]...)
			// next now points at the element after the removed one.
		} else if t.credit < 1 {
			// Credit spent: the turn passes to the next tenant.
			s.next++
		}
		return ch, t.name
	}
	return nil, ""
}

// popWaiter dequeues the tenant's next waiter, round-robin across its jobs.
// The tenant must have at least one waiter; caller holds s.mu.
func (t *slotTenant) popWaiter() chan struct{} {
	for {
		if t.jobNext >= len(t.jobRing) {
			t.jobNext = 0
		}
		job := t.jobRing[t.jobNext]
		q := t.jobs[job]
		if len(q) == 0 {
			// Defensive: a job left its queue without leaving the ring.
			delete(t.jobs, job)
			t.jobRing = append(t.jobRing[:t.jobNext:t.jobNext], t.jobRing[t.jobNext+1:]...)
			continue
		}
		ch := q[0]
		t.jobs[job] = q[1:]
		if len(t.jobs[job]) == 0 {
			delete(t.jobs, job)
			t.jobRing = append(t.jobRing[:t.jobNext:t.jobNext], t.jobRing[t.jobNext+1:]...)
			// jobNext now points at the element after the removed one.
		} else {
			t.jobNext++
		}
		t.waiters--
		return ch
	}
}

// dropFromRing removes name from a rotation slice, keeping next pointed at
// the same successor.
func dropFromRing(ring *[]string, next *int, name string) {
	r := *ring
	for i, j := range r {
		if j == name {
			*ring = append(r[:i:i], r[i+1:]...)
			if *next > i {
				*next--
			}
			return
		}
	}
}

// waiterCount reports the queued waiters (tests and introspection).
func (s *SharedSlots) waiterCount() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiting
}

// sanitizeMetric maps a tenant name onto a metric-name-safe suffix.
func sanitizeMetric(name string) string {
	if name == "" {
		return "anonymous"
	}
	b := []byte(name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// observe publishes one granted lease: wall wait seconds (global and
// per-tenant), the tenant's slot occupancy, and, when known, the in-use
// level (inUse < 0 means "transferred, level unchanged").
func (s *SharedSlots) observe(start time.Time, inUse int, tenant string, held int) {
	if s.reg == nil {
		return
	}
	s.reg.Counter("runtime_pool_leases_total").Inc()
	wait := time.Since(start).Seconds()
	s.reg.Histogram("runtime_pool_lease_wait_seconds").Observe(wait)
	ts := sanitizeMetric(tenant)
	s.reg.Histogram("slots_queue_wait_seconds_" + ts).Observe(wait)
	s.reg.Gauge("slots_occupancy_" + ts).Set(float64(held))
	if inUse >= 0 {
		s.reg.Gauge("runtime_pool_slots_in_use").Set(float64(inUse))
	}
}
