package evaluator

import (
	"context"
	"sync"
	"time"

	"lambdatune/internal/obs"
)

// SharedSlots is the Runtime's cross-job evaluation admission gate: a
// fair counting semaphore that bounds how many evaluation workers execute
// simulated queries concurrently across every job sharing a Runtime.
//
// The gate is strictly a wall-clock throttle. Each job keeps its logical
// Parallelism — the pool still spawns Parallelism workers and merges their
// virtual clocks identically — a slot only decides when a worker's host CPU
// burst runs. Virtual-clock outcomes are therefore byte-identical at any
// slot count, including zero contention (see the pool's determinism notes).
//
// Fairness is per job, round-robin: each job has a FIFO queue of waiting
// workers, and a released slot is granted to the next job in rotation, so a
// job with many workers cannot starve a job with one.
//
// A nil *SharedSlots is a no-op gate (Acquire returns immediately), so the
// single-run path pays one nil check and nothing else.
type SharedSlots struct {
	reg *obs.Registry

	mu      sync.Mutex
	cap     int
	inUse   int
	waiters map[string][]chan struct{}
	ring    []string // jobs with pending waiters, in round-robin rotation
	next    int      // ring index of the job served next
}

// NewSharedSlots builds a gate admitting capacity concurrent evaluation
// workers. capacity <= 0 returns nil — the unbounded no-op gate. When reg is
// non-nil the gate publishes runtime_pool_* metrics (lease counts, in-use
// gauge, wall-clock lease wait histogram).
func NewSharedSlots(capacity int, reg *obs.Registry) *SharedSlots {
	if capacity <= 0 {
		return nil
	}
	return &SharedSlots{cap: capacity, reg: reg, waiters: make(map[string][]chan struct{})}
}

// Acquire blocks until a slot is free (fair per-job rotation) or ctx is
// done, and returns an idempotent release function. job attributes the wait
// to a fairness queue ("" is a valid shared anonymous queue).
func (s *SharedSlots) Acquire(ctx context.Context, job string) (func(), error) {
	if s == nil {
		return func() {}, nil
	}
	start := time.Now()
	s.mu.Lock()
	if s.inUse < s.cap {
		s.inUse++
		inUse := s.inUse
		s.mu.Unlock()
		s.observe(start, inUse)
		return s.releaseFunc(), nil
	}
	ch := make(chan struct{})
	s.waiters[job] = append(s.waiters[job], ch)
	if len(s.waiters[job]) == 1 {
		s.ring = append(s.ring, job)
	}
	s.mu.Unlock()

	select {
	case <-ch:
		// The releaser transferred its slot to us; inUse stays constant.
		s.observe(start, -1)
		return s.releaseFunc(), nil
	case <-ctx.Done():
		s.mu.Lock()
		removed := false
		q := s.waiters[job]
		for i, c := range q {
			if c == ch {
				s.waiters[job] = append(q[:i:i], q[i+1:]...)
				removed = true
				break
			}
		}
		if removed && len(s.waiters[job]) == 0 {
			delete(s.waiters, job)
			s.dropFromRing(job)
		}
		s.mu.Unlock()
		if !removed {
			// Lost the race: a slot was granted concurrently with the
			// cancellation. Hand it straight back.
			<-ch
			s.release()
		}
		return nil, ctx.Err()
	}
}

// releaseFunc wraps release in a sync.Once so double-release (defer plus
// explicit) cannot corrupt the count.
func (s *SharedSlots) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(s.release) }
}

// release grants the freed slot to the next waiting job in rotation, or
// decrements inUse when nobody waits.
func (s *SharedSlots) release() {
	s.mu.Lock()
	for len(s.ring) > 0 {
		if s.next >= len(s.ring) {
			s.next = 0
		}
		job := s.ring[s.next]
		q := s.waiters[job]
		if len(q) == 0 {
			// Defensive: a job left the ring's queue without leaving the ring.
			s.ring = append(s.ring[:s.next:s.next], s.ring[s.next+1:]...)
			delete(s.waiters, job)
			continue
		}
		ch := q[0]
		s.waiters[job] = q[1:]
		if len(s.waiters[job]) == 0 {
			delete(s.waiters, job)
			s.ring = append(s.ring[:s.next:s.next], s.ring[s.next+1:]...)
			// next now points at the element after the removed one.
		} else {
			s.next++
		}
		s.mu.Unlock()
		close(ch) // transfer the slot without touching inUse
		return
	}
	s.inUse--
	inUse := s.inUse
	s.mu.Unlock()
	if s.reg != nil {
		s.reg.Gauge("runtime_pool_slots_in_use").Set(float64(inUse))
	}
}

// dropFromRing removes job from the rotation, keeping next pointed at the
// same successor. Caller holds s.mu.
func (s *SharedSlots) dropFromRing(job string) {
	for i, j := range s.ring {
		if j == job {
			s.ring = append(s.ring[:i:i], s.ring[i+1:]...)
			if s.next > i {
				s.next--
			}
			return
		}
	}
}

// observe publishes one granted lease: wall wait seconds and, when known,
// the in-use level (inUse < 0 means "transferred, level unchanged").
func (s *SharedSlots) observe(start time.Time, inUse int) {
	if s.reg == nil {
		return
	}
	s.reg.Counter("runtime_pool_leases_total").Inc()
	s.reg.Histogram("runtime_pool_lease_wait_seconds").Observe(time.Since(start).Seconds())
	if inUse >= 0 {
		s.reg.Gauge("runtime_pool_slots_in_use").Set(float64(inUse))
	}
}
