package evaluator

import (
	"fmt"
	"reflect"
	"testing"

	"lambdatune/internal/engine"
)

// TestMemoQueryIndexMapMatchesPlain asserts the memoized relevance map is
// exactly QueryIndexMap's output, across repeats, query subsets, and
// multiple configurations.
func TestMemoQueryIndexMapMatchesPlain(t *testing.T) {
	queries := make([]*engine.Query, 6)
	for i := range queries {
		queries[i] = mustQuery(t, fmt.Sprintf("q%d", i),
			fmt.Sprintf("SELECT * FROM t%d WHERE c%d > 5", i%3, i%2))
	}
	cfgA := &engine.Config{ID: "a", Indexes: []engine.IndexDef{
		engine.NewIndexDef("t0", "c0"),
		engine.NewIndexDef("t1", "c1"),
		engine.NewIndexDef("t2", "c0", "c1"),
	}}
	cfgB := &engine.Config{ID: "b", Indexes: []engine.IndexDef{
		engine.NewIndexDef("t0", "c1"),
	}}

	m := NewMemo()
	for rep := 0; rep < 3; rep++ {
		for _, cfg := range []*engine.Config{cfgA, cfgB} {
			for _, qs := range [][]*engine.Query{queries, queries[:3], queries[2:]} {
				want := QueryIndexMap(qs, cfg)
				got, hit := m.queryIndexMap(qs, cfg, "")
				if rep > 0 && !hit {
					t.Fatalf("cfg %s rep %d: expected a full memo hit", cfg.ID, rep)
				}
				if len(got) != len(want) {
					t.Fatalf("cfg %s: len %d want %d", cfg.ID, len(got), len(want))
				}
				for q, defs := range want {
					if !reflect.DeepEqual(got[q], defs) {
						t.Fatalf("cfg %s query %s: got %v want %v", cfg.ID, q.Name, got[q], defs)
					}
				}
			}
		}
	}
}

// TestMemoQueryIndexMapNil asserts the nil memo degrades to the plain
// computation.
func TestMemoQueryIndexMapNil(t *testing.T) {
	q := mustQuery(t, "q", "SELECT * FROM t0 WHERE c0 > 5")
	cfg := &engine.Config{ID: "a", Indexes: []engine.IndexDef{engine.NewIndexDef("t0", "c0")}}
	var m *Memo
	got, _ := m.queryIndexMap([]*engine.Query{q}, cfg, "")
	want := QueryIndexMap([]*engine.Query{q}, cfg)
	if !reflect.DeepEqual(got[q], want[q]) {
		t.Fatalf("got %v want %v", got[q], want[q])
	}
}

func mustQuery(t *testing.T, name, sql string) *engine.Query {
	t.Helper()
	q, err := engine.PrepareQuery(name, sql)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
