// Package evaluator implements λ-Tune's configuration evaluation component
// (paper §5, Algorithm 3): lazy index creation, query→index relevance
// mapping, and timeout-bounded query execution in the order chosen by the
// DP scheduler.
package evaluator

import (
	"context"
	"sort"
	"strings"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/obs"
)

// ConfigMeta is the per-configuration bookkeeping of Table 2.
type ConfigMeta struct {
	// Time is the accumulated execution time of *completed* queries.
	Time float64
	// IsComplete reports whether the last Evaluate pass finished every
	// query it was given without interruption.
	IsComplete bool
	// IndexTime is the accumulated index-creation time.
	IndexTime float64
	// Completed records fully processed queries by name.
	Completed map[string]bool
	// Aborts counts query executions killed by injected engine faults;
	// aborted queries stay un-completed and are retried in a later round.
	Aborts int
	// QueryTimes records each completed query's observed execution seconds,
	// populated only when the evaluator's RecordTimes flag is on (the racing
	// strategy's cost surrogate fits from these pairs). Nil otherwise, so
	// non-racing checkpoint encodings are unchanged.
	QueryTimes map[string]float64
}

// NewConfigMeta initializes the bookkeeping (paper: ConfigMeta(0,False,0,∅)).
func NewConfigMeta() *ConfigMeta {
	return &ConfigMeta{Completed: map[string]bool{}}
}

// Throughput is the configuration's completed-queries-per-second, used by
// the selector to prioritize promising configurations.
func (m *ConfigMeta) Throughput() float64 {
	if m.Time <= 0 {
		return 0
	}
	return float64(len(m.Completed)) / m.Time
}

// Evaluator runs configurations against the database backend.
type Evaluator struct {
	DB backend.Backend
	// UseScheduler enables the DP query ordering (§5.3); when false, queries
	// run in their given order — the paper's "Query Scheduler off" ablation.
	UseScheduler bool
	// LazyIndexes enables lazy index creation (§5.1); when false, all of a
	// configuration's indexes are created up front.
	LazyIndexes bool
	// Seed drives the k-means clustering inside the scheduler.
	Seed int64
	// Memo caches pure per-round recomputations (DP orderings, query→index
	// relevance maps) across evaluation rounds. Nil disables memoization;
	// results are identical either way.
	Memo *Memo
	// Trace/Span/Metrics are the optional telemetry hooks: when both Trace
	// and Span (the current candidate's span) are set, Evaluate opens
	// schedule / index.build / query child spans under Span; Metrics feeds
	// the tuner_* counters. All nil-safe — an untraced evaluator pays one
	// nil check per site.
	Trace   *obs.Tracer
	Span    *obs.Span
	Metrics *obs.Registry
	// RecordTimes makes Evaluate record each completed query's execution
	// seconds in meta.QueryTimes (racing's surrogate fits from them).
	RecordTimes bool
	// Owner names the tuning job this evaluator works for ("" outside a
	// shared Runtime). It attributes shared-memo entries and slot leases to
	// the job for cross-job telemetry and fair scheduling; it never affects
	// virtual-clock outcomes.
	Owner string
	// Slots, when non-nil, is the Runtime's cross-job admission gate: each
	// Evaluate pass holds one slot while it runs. The gate bounds host
	// concurrency only — logical parallelism and every virtual-clock outcome
	// are identical at any slot count.
	Slots *SharedSlots
	// FreeIndexes lists index keys (engine.IndexDef.Key) whose build cost
	// another candidate in the same racing rung already paid: they are
	// created without advancing the virtual clock and dropped when the
	// Evaluate pass ends. Nil outside racing rungs.
	FreeIndexes map[string]bool

	// freeCreated tracks the free indexes built during the current Evaluate
	// pass so they can be dropped on every return path.
	freeCreated []engine.IndexDef
}

// startSpan opens a child span under the current candidate span, or returns
// nil when tracing is off (no candidate span or no tracer).
func (e *Evaluator) startSpan(name string, virt float64, attrs ...obs.Attr) *obs.Span {
	if e.Span == nil {
		return nil
	}
	return e.Trace.Start(e.Span, name, virt, attrs...)
}

// New creates an evaluator with the paper's defaults (scheduler and lazy
// creation on). The round memo follows the backend's plan-cache toggle so
// one switch governs every memoization layer.
func New(db backend.Backend) *Evaluator {
	e := &Evaluator{DB: db, UseScheduler: true, LazyIndexes: true, Seed: 1}
	if backend.PlanCacheEnabled(db) {
		e.Memo = NewMemo()
	}
	return e
}

// QueryIndexMap associates each query with the configuration indexes it
// could exploit: an index is relevant when its leading column appears in the
// query's join or filter columns of the indexed table (paper §5.1).
func QueryIndexMap(queries []*engine.Query, cfg *engine.Config) map[*engine.Query][]engine.IndexDef {
	out := make(map[*engine.Query][]engine.IndexDef, len(queries))
	cols := map[string]bool{} // reused across queries; cleared per query
	for _, q := range queries {
		out[q] = queryIndexDefs(q, cfg, cols)
	}
	return out
}

// queryIndexDefs is the per-query core of QueryIndexMap: the configuration
// indexes relevant to one query. cols is a caller-provided scratch map,
// cleared here before use.
func queryIndexDefs(q *engine.Query, cfg *engine.Config, cols map[string]bool) []engine.IndexDef {
	clear(cols)
	for _, j := range q.Analysis.Joins {
		cols[j.LeftTable+"."+j.LeftColumn] = true
		cols[j.RightTable+"."+j.RightColumn] = true
	}
	for _, f := range q.Analysis.Filters {
		cols[f.Table+"."+f.Column] = true
	}
	var defs []engine.IndexDef
	for _, ix := range cfg.Indexes {
		lead := ix.ColumnList()[0]
		if cols[strings.ToLower(ix.Table)+"."+lead] {
			defs = append(defs, ix)
		}
	}
	sort.Slice(defs, func(a, b int) bool { return defs[a].Key() < defs[b].Key() })
	return defs
}

// Evaluate is Algorithm 3. It runs the given (not yet completed) queries
// under configuration cfg with a total time budget of timeout simulated
// seconds, creating relevant indexes lazily, and updates meta in place.
// Cancelling ctx stops the pass before the next query execution — at most
// one in-flight query completes after ctx.Done() — leaving meta in a
// consistent, resumable state (completed queries stay recorded).
//
// The caller is responsible for having applied cfg's parameters and dropped
// any transient indexes of prior configurations (see Apply).
func (e *Evaluator) Evaluate(ctx context.Context, cfg *engine.Config, queries []*engine.Query, timeout float64, meta *ConfigMeta) {
	release, err := e.Slots.Acquire(ctx, e.Owner)
	if err != nil {
		// Canceled while waiting for a slot: nothing ran, nothing changes.
		meta.IsComplete = false
		return
	}
	defer release()
	remaining := timeout
	created := map[string]bool{}
	for _, ix := range e.DB.Indexes() {
		created[ix.Key()] = true
	}
	meta.IsComplete = true
	clock := e.DB.Clock()
	defer e.dropFreeIndexes()

	// The scheduling preamble costs no virtual time (host CPU only), so its
	// span is a point on the virtual axis; the wall annotation carries the
	// real cost, and the memo-hit attributes explain it.
	schedSpan := e.startSpan("schedule", clock.Now())
	indexMap, mapHit := e.Memo.queryIndexMap(queries, cfg, e.Owner)
	ordered := queries
	orderHit := false
	if e.UseScheduler {
		ordered, orderHit = e.Memo.order(queries, indexMap, e.DB.IndexCreationSeconds, e.Seed, e.Owner)
	}
	// Memo hits depend on which pool worker warmed the shared memo first, so
	// they are annotations, not part of the deterministic trace shape.
	schedSpan.SetAttrs(obs.Bool("scheduler", e.UseScheduler),
		obs.Annot(obs.Bool("map_memo_hit", mapHit)), obs.Annot(obs.Bool("order_memo_hit", orderHit)))
	schedSpan.End(clock.Now())

	if !e.LazyIndexes {
		// Eager creation: every configuration index up front.
		for _, ix := range cfg.Indexes {
			if !created[ix.Key()] {
				meta.IndexTime += e.createIndex(ix)
				created[ix.Key()] = true
			}
		}
	}

	for _, q := range ordered {
		if ctx.Err() != nil {
			// Canceled: the pass did not finish; progress so far remains in
			// meta for a later resume.
			meta.IsComplete = false
			return
		}
		if e.LazyIndexes {
			for _, ix := range indexMap[q] {
				if !created[ix.Key()] {
					meta.IndexTime += e.createIndex(ix)
					created[ix.Key()] = true
				}
			}
		}
		qSpan := e.startSpan("query", clock.Now(), obs.String("query", q.Name))
		res := e.DB.RunQuery(q, remaining)
		qSpan.SetAttrs(obs.Float("seconds", res.Seconds),
			obs.Bool("complete", res.Complete), obs.Bool("aborted", res.Aborted))
		qSpan.End(clock.Now())
		e.Metrics.Counter("tuner_queries_total").Inc()
		if res.Aborted {
			// Injected engine fault: the wasted time still counts against
			// the round's budget, but the round degrades gracefully — the
			// remaining queries keep running and the aborted one is retried
			// in a later round (meta.Completed is the resume checkpoint).
			e.Metrics.Counter("tuner_query_aborts_total").Inc()
			meta.Aborts++
			meta.IsComplete = false
			remaining -= res.Seconds
			if remaining <= 0 {
				break
			}
			continue
		}
		if !res.Complete {
			meta.IsComplete = false
			break
		}
		remaining -= res.Seconds
		meta.Time += res.Seconds
		meta.Completed[q.Name] = true
		if e.RecordTimes {
			if meta.QueryTimes == nil {
				meta.QueryTimes = map[string]float64{}
			}
			meta.QueryTimes[q.Name] = res.Seconds
		}
	}
}

// Schedule returns the order Evaluate would run queries in under cfg — the
// query→index relevance map plus the DP schedule (§5.3) — without executing
// anything or advancing the virtual clock. The caller must have applied cfg
// first (index-creation estimates read the live configuration). With the
// scheduler off the given order comes back unchanged.
func (e *Evaluator) Schedule(queries []*engine.Query, cfg *engine.Config) []*engine.Query {
	indexMap, _ := e.Memo.queryIndexMap(queries, cfg, e.Owner)
	if !e.UseScheduler {
		return queries
	}
	ordered, _ := e.Memo.order(queries, indexMap, e.DB.IndexCreationSeconds, e.Seed, e.Owner)
	return ordered
}

// createIndex builds one index under an index.build span and bumps the
// index-build counter. Indexes listed in FreeIndexes — another candidate in
// the same racing rung already paid their build cost — are materialized
// without advancing the virtual clock and torn down when the pass ends.
func (e *Evaluator) createIndex(ix engine.IndexDef) float64 {
	clock := e.DB.Clock()
	if e.FreeIndexes[ix.Key()] {
		sp := e.startSpan("index.build", clock.Now(),
			obs.String("index", ix.Key()), obs.Bool("shared", true))
		e.DB.CreatePermanentIndex(ix)
		e.freeCreated = append(e.freeCreated, ix)
		sp.SetAttrs(obs.Float("seconds", 0))
		sp.End(clock.Now())
		e.Metrics.Counter("race_shared_index_builds_total").Inc()
		return 0
	}
	sp := e.startSpan("index.build", clock.Now(), obs.String("index", ix.Key()))
	secs := e.DB.CreateIndex(ix)
	sp.SetAttrs(obs.Float("seconds", secs))
	sp.End(clock.Now())
	e.Metrics.Counter("tuner_index_builds_total").Inc()
	return secs
}

// dropFreeIndexes removes the zero-cost shared indexes of the current pass.
// They are created as permanent (so DropTransientIndexes and per-pass
// accounting leave them alone mid-pass) and must not leak into later
// candidates' evaluations.
func (e *Evaluator) dropFreeIndexes() {
	for _, ix := range e.freeCreated {
		e.DB.DropIndex(ix)
	}
	e.freeCreated = e.freeCreated[:0]
}

// Apply switches the database to configuration cfg: transient indexes of the
// previous configuration are dropped (the paper notes indexes are implicitly
// dropped when Evaluate terminates) and cfg's parameters are installed.
func (e *Evaluator) Apply(cfg *engine.Config) error {
	e.DB.DropTransientIndexes()
	return e.DB.ApplyConfig(cfg)
}
