package evaluator

import (
	"context"
	"fmt"
	"math"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
)

func poolConfigs(n int) []*engine.Config {
	params := []map[string]string{
		{"work_mem": "256MB"},
		{"work_mem": "1GB", "shared_buffers": "8GB"},
		{"shared_buffers": "15GB", "effective_cache_size": "45GB"},
		{"random_page_cost": "1.1"},
		{"work_mem": "64MB", "random_page_cost": "2.0"},
		{"shared_buffers": "4GB", "work_mem": "512MB"},
	}
	var out []*engine.Config
	for i := 0; i < n; i++ {
		out = append(out, &engine.Config{
			ID:     fmt.Sprintf("c%d", i),
			Params: params[i%len(params)],
		})
	}
	return out
}

// runPool evaluates the configs once with the given worker count on a fresh
// database and returns the per-config metas plus the round's elapsed time.
func runPool(t *testing.T, workers int) (map[string]*ConfigMeta, float64, *backend.Sim) {
	t.Helper()
	db, w := setup(t)
	pool := NewPool(New(db), workers)
	metas := map[string]*ConfigMeta{}
	var tasks []Task
	for _, c := range poolConfigs(6) {
		m := NewConfigMeta()
		metas[c.ID] = m
		tasks = append(tasks, Task{Config: c, Queries: w.Queries, Timeout: math.Inf(1), Meta: m})
	}
	elapsed, err := pool.Run(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	return metas, elapsed, db
}

// TestPoolMatchesSequentialResults pins per-candidate determinism: every
// worker count produces the exact same runtimes and completion sets as
// workers=1, because each candidate runs sequentially on its own snapshot.
// Run under -race this doubles as the pool's data-race test.
func TestPoolMatchesSequentialResults(t *testing.T) {
	base, _, _ := runPool(t, 1)
	for _, workers := range []int{2, 4, 8} {
		got, _, _ := runPool(t, workers)
		for id, m := range base {
			g := got[id]
			if g.Time != m.Time || g.IsComplete != m.IsComplete ||
				g.IndexTime != m.IndexTime || len(g.Completed) != len(m.Completed) {
				t.Errorf("workers=%d config %s: got {%v %v %v %d}, want {%v %v %v %d}",
					workers, id, g.Time, g.IsComplete, g.IndexTime, len(g.Completed),
					m.Time, m.IsComplete, m.IndexTime, len(m.Completed))
			}
		}
	}
}

// TestPoolClockMergeIsMaxOverWorkers: the primary clock advances by the
// slowest worker's elapsed time, never by the sum of all candidates.
func TestPoolClockMergeIsMaxOverWorkers(t *testing.T) {
	metas, elapsedSeq, dbSeq := runPool(t, 1)
	if dbSeq.Clock().Now() != elapsedSeq {
		t.Fatalf("workers=1: clock %v != elapsed %v", dbSeq.Clock().Now(), elapsedSeq)
	}
	var total float64
	for _, m := range metas {
		total += m.Time + m.IndexTime
	}
	_, elapsedPar, dbPar := runPool(t, 3)
	if dbPar.Clock().Now() != elapsedPar {
		t.Fatalf("workers=3: clock %v != elapsed %v", dbPar.Clock().Now(), elapsedPar)
	}
	if elapsedPar >= total {
		t.Fatalf("workers=3 elapsed %v should be below the sequential total %v", elapsedPar, total)
	}
	if elapsedPar <= 0 {
		t.Fatal("parallel round reported zero elapsed time")
	}
}

// TestPoolAbsorbsCounters: executions on worker snapshots fold back into the
// primary's counters.
func TestPoolAbsorbsCounters(t *testing.T) {
	_, _, db := runPool(t, 4)
	if db.Executions() == 0 {
		t.Fatal("worker executions were not absorbed into the primary")
	}
}

// TestPoolBadConfigMarkedIncomplete: an unusable configuration is marked
// permanently incomplete, like the sequential path does.
func TestPoolBadConfigMarkedIncomplete(t *testing.T) {
	db, w := setup(t)
	pool := NewPool(New(db), 2)
	bad := &engine.Config{ID: "bad", Params: map[string]string{"work_mem": "banana"}}
	good := &engine.Config{ID: "good", Params: map[string]string{"work_mem": "256MB"}}
	mBad, mGood := NewConfigMeta(), NewConfigMeta()
	_, err := pool.Run(context.Background(), []Task{
		{Config: bad, Queries: w.Queries, Timeout: math.Inf(1), Meta: mBad},
		{Config: good, Queries: w.Queries, Timeout: math.Inf(1), Meta: mGood},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mBad.IsComplete {
		t.Error("unusable configuration reported complete")
	}
	if !mGood.IsComplete {
		t.Error("good configuration did not complete")
	}
}

// TestPoolCancellation: a cancelled context stops the workers, returns the
// context error, and leaves partial progress merged and resumable.
func TestPoolCancellation(t *testing.T) {
	db, w := setup(t)
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from inside the engine after a few executions; the hook is
	// inherited by worker snapshots.
	var execs int
	db.SetExecHook(func(q *engine.Query, seconds float64) {
		execs++
		if execs >= 3 {
			cancel()
		}
	})
	// One task per worker slot so the hook counter is only touched by one
	// worker (pool workers clamp to len(tasks); with workers=1 the hook is
	// race-free).
	pool := NewPool(New(db), 1)
	m := NewConfigMeta()
	_, err := pool.Run(ctx, []Task{
		{Config: poolConfigs(1)[0], Queries: w.Queries, Timeout: math.Inf(1), Meta: m},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m.IsComplete {
		t.Error("cancelled evaluation reported complete")
	}
	if len(m.Completed) == 0 {
		t.Error("partial progress lost on cancellation")
	}
	if len(m.Completed) >= len(w.Queries) {
		t.Error("cancellation did not stop the evaluation early")
	}
}
