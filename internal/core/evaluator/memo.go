package evaluator

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"lambdatune/internal/core/schedule"
	"lambdatune/internal/engine"
	"lambdatune/internal/obs"
)

// Memo caches the evaluator's pure per-round recomputations across rounds —
// and, when owned by a shared Runtime, across whole tuning jobs. The selector
// re-evaluates every incomplete configuration each round, and a round's
// preamble — the query→index relevance map and the DP schedule — is a pure
// function of inputs that mostly repeat between rounds (and repeat wholesale
// between jobs tuning the same schema and workload). Like the engine's plan
// cache, the memo changes host CPU time only: a hit returns exactly what the
// recomputation would.
//
// Two layers live here:
//
//   - queryIndexMap memoizes per-(configuration, query) relevance slices.
//     Relevance reads nothing but the query's analysis and cfg.Indexes, both
//     immutable after construction, so entries are keyed by content — the
//     sorted index keys of the configuration plus the query name — and never
//     invalidate. Within a private (single-run) memo a hit additionally
//     requires pointer identity on the query, preserving pre-runtime
//     semantics; a shared memo trusts names because its namespace key (catalog
//     fingerprint + workload digest) pins each name to one SQL body.
//   - the schedule.Memo for DP orderings, which folds every backend value the
//     DP reads into its key (see schedule.Memo and OrderScoped).
//
// A Memo is safe for concurrent use and is shared across the parallel
// evaluator's workers. Construction is gated on the backend's plan-cache
// toggle (see New), so one switch governs every memoization layer.
type Memo struct {
	s *schedule.Memo
	// shared marks a Runtime-owned memo probed by many jobs (see
	// NewSharedMemo); ns/reg feed the per-namespace runtime_* counters.
	shared bool
	ns     string
	reg    *obs.Registry

	mu   sync.Mutex
	maps map[string]map[string]relevanceEntry // config content key → query name
	keys map[*engine.Config]string            // config → content key, guarded by mu
	cols map[string]bool                      // scratch for queryIndexDefs, guarded by mu

	lookups      atomic.Uint64
	hits         atomic.Uint64
	crossJobHits atomic.Uint64
}

// relevanceEntry is one memoized relevance slice with the query pointer that
// computed it (the private-memo identity guard) and the owning job.
type relevanceEntry struct {
	q     *engine.Query
	owner string
	defs  []engine.IndexDef
}

// MemoStats is a point-in-time snapshot of the memo's hit accounting,
// aggregated over both layers (relevance and DP ordering).
type MemoStats struct {
	// Lookups counts probes: one per (query, configuration) relevance lookup
	// plus one per DP-ordering request.
	Lookups uint64
	// Hits counts probes served from the memo; Misses = Lookups - Hits.
	Hits uint64
	// CrossJobHits counts hits on entries computed by a different job — the
	// shared Runtime's reuse signal. Always 0 for a private memo.
	CrossJobHits uint64
}

// Misses returns Lookups - Hits.
func (s MemoStats) Misses() uint64 { return s.Lookups - s.Hits }

// memoMaxConfigs bounds the relevance-map layer; overflow clears it (a
// selector run touches Samples+1 configurations, far below the bound).
const memoMaxConfigs = 64

// NewMemo returns an empty private evaluator memo (single-run semantics).
func NewMemo() *Memo {
	return &Memo{s: schedule.NewMemo(), cols: map[string]bool{}}
}

// NewSharedMemo returns a memo owned by a shared Runtime namespace: hits may
// cross job boundaries (callers pass their job ID as owner), and when reg is
// non-nil the memo publishes per-namespace counters
// runtime_memo_{hits,misses,cross_job_hits}_total_<ns>.
func NewSharedMemo(ns string, reg *obs.Registry) *Memo {
	m := NewMemo()
	m.shared = true
	m.ns = ns
	m.reg = reg
	return m
}

// Stats returns the memo's current hit accounting (zero value for nil).
func (m *Memo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	return MemoStats{
		Lookups:      m.lookups.Load(),
		Hits:         m.hits.Load(),
		CrossJobHits: m.crossJobHits.Load(),
	}
}

// record folds one batch of probe outcomes into the counters and, for a
// shared memo with a registry, the per-namespace runtime_* series.
func (m *Memo) record(lookups, hits, cross uint64) {
	m.lookups.Add(lookups)
	m.hits.Add(hits)
	m.crossJobHits.Add(cross)
	if m.reg != nil {
		m.reg.Counter("runtime_memo_hits_total_" + m.ns).Add(float64(hits))
		m.reg.Counter("runtime_memo_misses_total_" + m.ns).Add(float64(lookups - hits))
		m.reg.Counter("runtime_memo_cross_job_hits_total_" + m.ns).Add(float64(cross))
	}
}

// configKey returns cfg's content key — its index keys, sorted and joined —
// caching the string per configuration pointer. Relevance reads nothing of a
// configuration but its index set, so configurations with equal index sets
// may share relevance entries. Caller holds m.mu.
func (m *Memo) configKey(cfg *engine.Config) string {
	if k, ok := m.keys[cfg]; ok {
		return k
	}
	ks := make([]string, len(cfg.Indexes))
	for i, ix := range cfg.Indexes {
		ks[i] = ix.Key()
	}
	sort.Strings(ks)
	k := strings.Join(ks, "\x00")
	if m.keys == nil {
		m.keys = make(map[*engine.Config]string, 8)
	}
	m.keys[cfg] = k
	return k
}

// queryIndexMap is the memoizing front of QueryIndexMap. A nil receiver
// degrades to the plain computation. owner names the probing job ("" for
// single-run use). Cached relevance slices are shared between rounds (and,
// on a shared memo, between jobs) and must be treated as read-only — every
// consumer (Evaluate's lazy creation loop, the scheduler) only iterates
// them. The bool reports a full memo hit (every query served from cache)
// for telemetry.
func (m *Memo) queryIndexMap(queries []*engine.Query, cfg *engine.Config, owner string) (map[*engine.Query][]engine.IndexDef, bool) {
	if m == nil {
		return QueryIndexMap(queries, cfg), false
	}
	out := make(map[*engine.Query][]engine.IndexDef, len(queries))
	var hits, cross uint64
	m.mu.Lock()
	key := m.configKey(cfg)
	per := m.maps[key]
	if per == nil {
		if m.maps == nil || len(m.maps) >= memoMaxConfigs {
			m.maps = make(map[string]map[string]relevanceEntry, 8)
			m.keys = nil // the key cache is only useful alongside its entries
			key = m.configKey(cfg)
		}
		per = make(map[string]relevanceEntry, len(queries))
		m.maps[key] = per
	}
	full := true
	for _, q := range queries {
		e, ok := per[q.Name]
		if ok && (e.q == q || m.shared) {
			hits++
			if m.shared && e.owner != owner {
				cross++
			}
			out[q] = e.defs
			continue
		}
		full = false
		defs := queryIndexDefs(q, cfg, m.cols)
		per[q.Name] = relevanceEntry{q: q, owner: owner, defs: defs}
		out[q] = defs
	}
	m.mu.Unlock()
	m.record(uint64(len(queries)), hits, cross)
	return out, full
}

// order is the memoizing front of schedule.Order, threading the probing job
// through to the scoped schedule memo. A nil receiver degrades to the plain
// DP. The bool reports a memo hit.
func (m *Memo) order(queries []*engine.Query, indexMap map[*engine.Query][]engine.IndexDef, cost schedule.IndexCost, seed int64, owner string) ([]*engine.Query, bool) {
	if m == nil {
		return schedule.Order(queries, indexMap, cost, seed), false
	}
	out, hit, cross := m.s.OrderScoped(owner, queries, indexMap, cost, seed)
	var h, c uint64
	if hit {
		h = 1
	}
	if cross {
		c = 1
	}
	m.record(1, h, c)
	return out, hit
}
