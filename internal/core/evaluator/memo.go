package evaluator

import (
	"sync"

	"lambdatune/internal/core/schedule"
	"lambdatune/internal/engine"
)

// Memo caches the evaluator's pure per-round recomputations across rounds.
// The selector re-evaluates every incomplete configuration each round, and a
// round's preamble — the query→index relevance map and the DP schedule — is
// a pure function of inputs that mostly repeat between rounds. Like the
// engine's plan cache, the memo changes host CPU time only: a hit returns
// exactly what the recomputation would.
//
// Two layers live here:
//
//   - queryIndexMap memoizes per-(configuration, query) relevance slices.
//     Relevance reads nothing but the query's analysis and cfg.Indexes, both
//     immutable after construction, so entries never invalidate.
//   - sched is the schedule.Memo for DP orderings, which folds every backend
//     value the DP reads into its key (see schedule.Memo).
//
// A Memo is safe for concurrent use and is shared across the parallel
// evaluator's workers. Construction is gated on the backend's plan-cache
// toggle (see New), so one switch governs every memoization layer.
type Memo struct {
	s *schedule.Memo

	mu   sync.Mutex
	maps map[*engine.Config]map[*engine.Query][]engine.IndexDef
	cols map[string]bool // scratch for queryIndexDefs, guarded by mu
}

// memoMaxConfigs bounds the relevance-map layer; overflow clears it (a
// selector run touches Samples+1 configurations, far below the bound).
const memoMaxConfigs = 64

// NewMemo returns an empty evaluator memo.
func NewMemo() *Memo {
	return &Memo{s: schedule.NewMemo(), cols: map[string]bool{}}
}

// sched returns the schedule-order memo (nil for a nil receiver, which
// schedule.Memo treats as "memoization off").
func (m *Memo) sched() *schedule.Memo {
	if m == nil {
		return nil
	}
	return m.s
}

// queryIndexMap is the memoizing front of QueryIndexMap. A nil receiver
// degrades to the plain computation. Cached relevance slices are shared
// between rounds and must be treated as read-only — every consumer
// (Evaluate's lazy creation loop, the scheduler) only iterates them.
// The bool reports a full memo hit (every query served from cache) for
// telemetry.
func (m *Memo) queryIndexMap(queries []*engine.Query, cfg *engine.Config) (map[*engine.Query][]engine.IndexDef, bool) {
	if m == nil {
		return QueryIndexMap(queries, cfg), false
	}
	out := make(map[*engine.Query][]engine.IndexDef, len(queries))
	m.mu.Lock()
	per := m.maps[cfg]
	if per == nil {
		if m.maps == nil || len(m.maps) >= memoMaxConfigs {
			m.maps = make(map[*engine.Config]map[*engine.Query][]engine.IndexDef, 8)
		}
		per = make(map[*engine.Query][]engine.IndexDef, len(queries))
		m.maps[cfg] = per
	}
	hit := true
	for _, q := range queries {
		defs, ok := per[q]
		if !ok {
			hit = false
			defs = queryIndexDefs(q, cfg, m.cols)
			per[q] = defs
		}
		out[q] = defs
	}
	m.mu.Unlock()
	return out, hit
}
