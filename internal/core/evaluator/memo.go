package evaluator

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"lambdatune/internal/core/schedule"
	"lambdatune/internal/engine"
	"lambdatune/internal/obs"
)

// Memo caches the evaluator's pure per-round recomputations across rounds —
// and, when owned by a shared Runtime, across whole tuning jobs. The selector
// re-evaluates every incomplete configuration each round, and a round's
// preamble — the query→index relevance map and the DP schedule — is a pure
// function of inputs that mostly repeat between rounds (and repeat wholesale
// between jobs tuning the same schema and workload). Like the engine's plan
// cache, the memo changes host CPU time only: a hit returns exactly what the
// recomputation would.
//
// Two layers live here:
//
//   - queryIndexMap memoizes per-(configuration, query) relevance slices.
//     Relevance reads nothing but the query's analysis and cfg.Indexes, both
//     immutable after construction, so entries are keyed by content — the
//     sorted index keys of the configuration plus the query name — and never
//     invalidate. Within a private (single-run) memo a hit additionally
//     requires pointer identity on the query, preserving pre-runtime
//     semantics; a shared memo trusts names because its namespace key (catalog
//     fingerprint + workload digest) pins each name to one SQL body.
//   - the schedule.Memo for DP orderings, which folds every backend value the
//     DP reads into its key (see schedule.Memo and OrderScoped).
//
// Lifecycle. Both layers evict by recency rather than clearing on overflow:
// the relevance layer drops its least-recently-probed configuration when the
// config bound is hit, and the schedule memo runs a sharded segmented LRU
// (see schedule.Memo). NewLegacySharedMemo restores the historical
// clear-on-overflow lifecycle as the A/B baseline for eviction benchmarks.
//
// A Memo is safe for concurrent use and is shared across the parallel
// evaluator's workers. Construction is gated on the backend's plan-cache
// toggle (see New), so one switch governs every memoization layer.
type Memo struct {
	s *schedule.Memo
	// shared marks a Runtime-owned memo probed by many jobs (see
	// NewSharedMemo); ns/reg feed the per-namespace runtime_* counters.
	shared bool
	legacy bool
	ns     string
	reg    *obs.Registry

	mu   sync.Mutex
	maps map[string]map[string]relevanceEntry // config content key → query name
	lru  []string                             // config content keys, least-recent first
	keys map[*engine.Config]string            // config → content key, guarded by mu
	cols map[string]bool                      // scratch for queryIndexDefs, guarded by mu

	lookups      atomic.Uint64
	hits         atomic.Uint64
	crossJobHits atomic.Uint64
	evictions    atomic.Uint64 // relevance-layer entries dropped
	// evictPublished tracks how much of the combined eviction total has been
	// flushed to the registry, so record can publish monotone deltas.
	evictPublished atomic.Uint64
	// segTick samples the segment-occupancy gauges: every segPublishEvery-th
	// record call refreshes them (see record).
	segTick atomic.Uint64
}

// segPublishEvery is the sampling period of the segment-occupancy gauges.
const segPublishEvery = 64

// relevanceEntry is one memoized relevance slice with the query pointer that
// computed it (the private-memo identity guard) and the owning job.
type relevanceEntry struct {
	q     *engine.Query
	owner string
	defs  []engine.IndexDef
}

// MemoStats is a point-in-time snapshot of the memo's hit accounting,
// aggregated over both layers (relevance and DP ordering).
type MemoStats struct {
	// Lookups counts probes: one per (query, configuration) relevance lookup
	// plus one per DP-ordering request.
	Lookups uint64
	// Hits counts probes served from the memo; Misses = Lookups - Hits.
	Hits uint64
	// CrossJobHits counts hits on entries computed by a different job — the
	// shared Runtime's reuse signal. Always 0 for a private memo.
	CrossJobHits uint64
	// Evictions counts entries dropped by the lifecycle across both layers.
	Evictions uint64
	// ScheduleHits / ScheduleProtectedHits expose the schedule memo's
	// segmented-LRU accounting; their ratio is the hit-retention signal.
	ScheduleHits          uint64
	ScheduleProtectedHits uint64
}

// Misses returns Lookups - Hits.
func (s MemoStats) Misses() uint64 { return s.Lookups - s.Hits }

// HitRetention is the fraction of schedule-memo hits served from the
// protected segment — how much of the hit traffic lands on entries the
// lifecycle chose to retain (0 when no hits, or under the legacy lifecycle,
// which has no protected segment).
func (s MemoStats) HitRetention() float64 {
	if s.ScheduleHits == 0 {
		return 0
	}
	return float64(s.ScheduleProtectedHits) / float64(s.ScheduleHits)
}

// memoMaxConfigs bounds the relevance-map layer (a selector run touches
// Samples+1 configurations, far below the bound; overflow drops the
// least-recently-probed configuration).
const memoMaxConfigs = 64

// memoMaxConfigKeys bounds the pointer→content-key cache; it is a pure
// cache, so overflow just clears it.
const memoMaxConfigKeys = 4 * memoMaxConfigs

// NewMemo returns an empty private evaluator memo (single-run semantics).
func NewMemo() *Memo {
	return &Memo{s: schedule.NewMemo(), cols: map[string]bool{}}
}

// NewSharedMemo returns a memo owned by a shared Runtime namespace: hits may
// cross job boundaries (callers pass their job ID as owner), and when reg is
// non-nil the memo publishes per-namespace counters
// runtime_memo_{hits,misses,cross_job_hits,evictions}_total_<ns> plus the
// runtime_memo_hit_retention_<ns> and segment-occupancy gauges
// (runtime_memo_{probation,protected}_entries_<ns>) and the aggregate
// runtime_memo_evictions_total. capacity bounds the schedule layer's entry
// count per namespace (<= 0 selects the default).
func NewSharedMemo(ns string, reg *obs.Registry, capacity int) *Memo {
	m := NewMemo()
	if capacity > 0 {
		m.s = schedule.NewMemoCapacity(capacity, false)
	}
	m.shared = true
	m.ns = ns
	m.reg = reg
	return m
}

// NewLegacySharedMemo is NewSharedMemo with the historical clear-on-overflow
// lifecycle in both layers — the measurable baseline the segmented LRU is
// benchmarked against (see the E16 job-throughput study).
func NewLegacySharedMemo(ns string, reg *obs.Registry, capacity int) *Memo {
	m := NewSharedMemo(ns, reg, 0)
	m.legacy = true
	if capacity <= 0 {
		m.s = schedule.NewLegacyMemo()
	} else {
		m.s = schedule.NewMemoCapacity(capacity, true)
	}
	return m
}

// Stats returns the memo's current hit accounting (zero value for nil).
func (m *Memo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	ss := m.s.Stats()
	return MemoStats{
		Lookups:               m.lookups.Load(),
		Hits:                  m.hits.Load(),
		CrossJobHits:          m.crossJobHits.Load(),
		Evictions:             m.evictions.Load() + uint64(ss.Evictions),
		ScheduleHits:          uint64(ss.Hits),
		ScheduleProtectedHits: uint64(ss.ProtectedHits),
	}
}

// record folds one batch of probe outcomes into the counters and, for a
// shared memo with a registry, the per-namespace runtime_* series (including
// eviction deltas accumulated by either layer since the last publish).
func (m *Memo) record(lookups, hits, cross uint64) {
	m.lookups.Add(lookups)
	m.hits.Add(hits)
	m.crossJobHits.Add(cross)
	if m.reg == nil {
		return
	}
	m.reg.Counter("runtime_memo_hits_total_" + m.ns).Add(float64(hits))
	m.reg.Counter("runtime_memo_misses_total_" + m.ns).Add(float64(lookups - hits))
	m.reg.Counter("runtime_memo_cross_job_hits_total_" + m.ns).Add(float64(cross))
	ss := m.s.Stats()
	if ss.Hits > 0 {
		m.reg.Gauge("runtime_memo_hit_retention_" + m.ns).Set(float64(ss.ProtectedHits) / float64(ss.Hits))
	}
	// Segment occupancy is a point-in-time gauge, so publishing a sampled
	// snapshot loses nothing — and sampling matters: Segments locks every
	// shard, and record sits on the per-probe hot path of all jobs at once.
	if m.segTick.Add(1)%segPublishEvery == 0 {
		seg := m.s.Segments()
		m.reg.Gauge("runtime_memo_probation_entries_" + m.ns).Set(float64(seg.Probation))
		m.reg.Gauge("runtime_memo_protected_entries_" + m.ns).Set(float64(seg.Protected))
	}
	total := m.evictions.Load() + uint64(ss.Evictions)
	for {
		prev := m.evictPublished.Load()
		if total <= prev {
			return
		}
		if m.evictPublished.CompareAndSwap(prev, total) {
			delta := float64(total - prev)
			m.reg.Counter("runtime_memo_evictions_total").Add(delta)
			m.reg.Counter("runtime_memo_evictions_total_" + m.ns).Add(delta)
			return
		}
	}
}

// configKey returns cfg's content key — its index keys, sorted and joined —
// caching the string per configuration pointer. Relevance reads nothing of a
// configuration but its index set, so configurations with equal index sets
// may share relevance entries. Caller holds m.mu.
func (m *Memo) configKey(cfg *engine.Config) string {
	if k, ok := m.keys[cfg]; ok {
		return k
	}
	ks := make([]string, len(cfg.Indexes))
	for i, ix := range cfg.Indexes {
		ks[i] = ix.Key()
	}
	sort.Strings(ks)
	k := strings.Join(ks, "\x00")
	if m.keys == nil {
		m.keys = make(map[*engine.Config]string, 8)
	} else if len(m.keys) >= memoMaxConfigKeys {
		// The pointer cache is only an accelerator; a long-lived daemon sees
		// unbounded distinct *Config pointers, so flush rather than leak.
		clear(m.keys)
	}
	m.keys[cfg] = k
	return k
}

// touchConfig moves key to the most-recent end of the relevance-layer LRU
// order. Caller holds m.mu.
func (m *Memo) touchConfig(key string) {
	n := len(m.lru)
	if n > 0 && m.lru[n-1] == key {
		return
	}
	for i := n - 1; i >= 0; i-- {
		if m.lru[i] == key {
			copy(m.lru[i:], m.lru[i+1:])
			m.lru[n-1] = key
			return
		}
	}
	m.lru = append(m.lru, key)
}

// evictConfigLocked applies the relevance-layer bound: in legacy mode a full
// flush, otherwise dropping the least-recently-probed configuration. Caller
// holds m.mu.
func (m *Memo) evictConfigLocked() {
	if m.legacy {
		for _, per := range m.maps {
			m.evictions.Add(uint64(len(per)))
		}
		m.maps = make(map[string]map[string]relevanceEntry, 8)
		m.lru = m.lru[:0]
		m.keys = nil // the key cache is only useful alongside its entries
		return
	}
	for len(m.maps) >= memoMaxConfigs && len(m.lru) > 0 {
		victim := m.lru[0]
		m.lru = m.lru[1:]
		if per, ok := m.maps[victim]; ok {
			m.evictions.Add(uint64(len(per)))
			delete(m.maps, victim)
		}
	}
}

// queryIndexMap is the memoizing front of QueryIndexMap. A nil receiver
// degrades to the plain computation. owner names the probing job ("" for
// single-run use). Cached relevance slices are shared between rounds (and,
// on a shared memo, between jobs) and must be treated as read-only — every
// consumer (Evaluate's lazy creation loop, the scheduler) only iterates
// them. The bool reports a full memo hit (every query served from cache)
// for telemetry.
func (m *Memo) queryIndexMap(queries []*engine.Query, cfg *engine.Config, owner string) (map[*engine.Query][]engine.IndexDef, bool) {
	if m == nil {
		return QueryIndexMap(queries, cfg), false
	}
	out := make(map[*engine.Query][]engine.IndexDef, len(queries))
	var hits, cross uint64
	m.mu.Lock()
	key := m.configKey(cfg)
	per := m.maps[key]
	if per == nil {
		if m.maps == nil {
			m.maps = make(map[string]map[string]relevanceEntry, 8)
		} else if len(m.maps) >= memoMaxConfigs {
			m.evictConfigLocked()
			key = m.configKey(cfg)
		}
		per = make(map[string]relevanceEntry, len(queries))
		m.maps[key] = per
	}
	m.touchConfig(key)
	full := true
	for _, q := range queries {
		e, ok := per[q.Name]
		if ok && (e.q == q || m.shared) {
			hits++
			if m.shared && e.owner != owner {
				cross++
			}
			out[q] = e.defs
			continue
		}
		full = false
		defs := queryIndexDefs(q, cfg, m.cols)
		per[q.Name] = relevanceEntry{q: q, owner: owner, defs: defs}
		out[q] = defs
	}
	m.mu.Unlock()
	m.record(uint64(len(queries)), hits, cross)
	return out, full
}

// order is the memoizing front of schedule.Order, threading the probing job
// through to the scoped schedule memo. A nil receiver degrades to the plain
// DP. The bool reports a memo hit.
func (m *Memo) order(queries []*engine.Query, indexMap map[*engine.Query][]engine.IndexDef, cost schedule.IndexCost, seed int64, owner string) ([]*engine.Query, bool) {
	if m == nil {
		return schedule.Order(queries, indexMap, cost, seed), false
	}
	out, hit, cross := m.s.OrderScoped(owner, queries, indexMap, cost, seed)
	var h, c uint64
	if hit {
		h = 1
	}
	if cross {
		c = 1
	}
	m.record(1, h, c)
	return out, hit
}
