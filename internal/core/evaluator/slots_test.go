package evaluator

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSharedSlotsBound hammers the gate from many goroutines and asserts the
// concurrent-holder count never exceeds capacity.
func TestSharedSlotsBound(t *testing.T) {
	const capacity = 3
	s := NewSharedSlots(capacity, nil)
	var inUse, peak atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 24; w++ {
		job := string(rune('a' + w%4))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				release, err := s.Acquire(context.Background(), job)
				if err != nil {
					t.Error(err)
					return
				}
				n := inUse.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				inUse.Add(-1)
				release()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > capacity {
		t.Fatalf("observed %d concurrent holders, cap %d", p, capacity)
	}
}

// TestSharedSlotsFairness saturates the gate with one greedy job and asserts
// a single-worker job still gets slots: the round-robin grant must alternate
// between jobs rather than draining the longer queue first.
func TestSharedSlotsFairness(t *testing.T) {
	s := NewSharedSlots(1, nil)
	hold, err := s.Acquire(context.Background(), "seed")
	if err != nil {
		t.Fatal(err)
	}

	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := func(job string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				release, err := s.Acquire(context.Background(), job)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				order = append(order, job)
				mu.Unlock()
				release()
			}()
		}
	}
	start("greedy", 8)
	time.Sleep(20 * time.Millisecond) // let the greedy waiters enqueue first
	start("meek", 2)
	time.Sleep(20 * time.Millisecond)
	hold()
	wg.Wait()

	// With strict FIFO the meek job would run last; round-robin must grant it
	// one of the first few slots.
	pos := -1
	for i, j := range order {
		if j == "meek" {
			pos = i
			break
		}
	}
	if pos < 0 || pos > 3 {
		t.Fatalf("meek job first served at position %d of %v; round-robin fairness violated", pos, order)
	}
}

// TestSharedSlotsCancel asserts a canceled waiter leaves the gate usable and
// leaks nothing: the outstanding slot still round-trips.
func TestSharedSlotsCancel(t *testing.T) {
	s := NewSharedSlots(1, nil)
	hold, err := s.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, "b")
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("canceled Acquire returned %v", err)
	}
	hold()

	// The slot must be immediately available again.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	release, err := s.Acquire(ctx2, "c")
	if err != nil {
		t.Fatalf("gate unusable after canceled waiter: %v", err)
	}
	release()
}

// TestSharedSlotsNil asserts the nil gate and zero capacity are no-ops.
func TestSharedSlotsNil(t *testing.T) {
	if s := NewSharedSlots(0, nil); s != nil {
		t.Fatal("capacity 0 should return the nil no-op gate")
	}
	var s *SharedSlots
	release, err := s.Acquire(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	release()
}

// TestSharedSlotsDoubleRelease asserts release is idempotent.
func TestSharedSlotsDoubleRelease(t *testing.T) {
	s := NewSharedSlots(1, nil)
	release, err := s.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // must not free a second slot

	r1, err := s.Acquire(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := s.Acquire(ctx, "c"); err == nil {
		t.Fatal("double release minted an extra slot")
	}
	r1()
}
