// Package race implements successive-halving ("racing") candidate
// evaluation: all candidates run on a cheap prefix of the DP-scheduled
// workload, the surrogate-dominated half is eliminated at each rung, and
// survivors are promoted to progressively longer prefixes. The exact,
// paper-faithful selection pass (Algorithm 2) is reserved for the final
// survivors, so the selected configuration's reported speedup stays exact.
//
// The package is deliberately free of evaluator/selector dependencies: it
// holds the pure racing arithmetic — the rung ladder, the online cost
// surrogate, and the elimination rule — so each piece is testable in
// isolation and the checkpoint layer can serialize State without import
// cycles.
package race

import (
	"math"
	"sort"
)

// Options tunes the racing strategy. The zero value means "use defaults"
// for every field, so callers can set only what they care about.
type Options struct {
	// StartFraction is the fraction of the workload evaluated at the first
	// rung (rounded up, at least one query). Default 0.125 — deep enough
	// that a typical field is eliminated down to FinalSurvivors before the
	// prefix reaches the full workload, which is where racing's savings
	// come from.
	StartFraction float64
	// Growth multiplies the prefix length between rungs. Default 2.
	Growth float64
	// FinalSurvivors is how many candidates are handed to the exact final
	// selection pass. Default 2.
	FinalSurvivors int
	// DisableElimination runs a single rung over the full workload and
	// eliminates nobody — racing's bookkeeping with none of its
	// approximation, used by equivalence tests.
	DisableElimination bool
}

// DefaultOptions returns the racing defaults.
func DefaultOptions() Options {
	return Options{StartFraction: 0.125, Growth: 2, FinalSurvivors: 2}
}

// Norm fills zero fields with their defaults and clamps nonsense values.
func (o Options) Norm() Options {
	if o.StartFraction <= 0 || o.StartFraction > 1 {
		o.StartFraction = 0.125
	}
	if o.Growth < 1 {
		o.Growth = 2
	}
	if o.FinalSurvivors < 1 {
		o.FinalSurvivors = 2
	}
	return o
}

// Ladder returns the rung prefix lengths for an n-query workload: the
// first rung covers ceil(StartFraction*n) queries and each following rung
// grows by Growth until the full workload is reached. The last entry is
// always n. DisableElimination collapses the ladder to a single full-length
// rung.
func Ladder(n int, o Options) []int {
	o = o.Norm()
	if n <= 0 {
		return nil
	}
	if o.DisableElimination {
		return []int{n}
	}
	rungs := []int{}
	l := int(math.Ceil(o.StartFraction * float64(n)))
	if l < 1 {
		l = 1
	}
	for l < n {
		rungs = append(rungs, l)
		next := int(math.Ceil(float64(l) * o.Growth))
		if next <= l {
			next = l + 1
		}
		l = next
	}
	return append(rungs, n)
}

// Keep returns how many of n racing candidates survive one elimination:
// half rounded up, but never fewer than FinalSurvivors.
func Keep(n int, o Options) int {
	o = o.Norm()
	k := (n + 1) / 2
	if k < o.FinalSurvivors {
		k = o.FinalSurvivors
	}
	if k > n {
		k = n
	}
	return k
}

// State is the racing strategy's durable bookkeeping, serialized into
// checkpoints so a crashed run resumes at the rung boundary it last saved.
// Eliminations are implicit: a candidate absent from Survivors is out.
type State struct {
	// Rung is the next rung to run (rungs already completed).
	Rung int `json:"rung"`
	// Survivors holds the IDs of candidates still racing, in original
	// candidate order.
	Survivors []string `json:"survivors"`
	// Done marks the rung ladder finished; the run is in (or past) the
	// exact final pass.
	Done bool `json:"done,omitempty"`
}

// Clone returns a deep copy of the state (nil-safe).
func (s *State) Clone() *State {
	if s == nil {
		return nil
	}
	c := *s
	c.Survivors = append([]string(nil), s.Survivors...)
	return &c
}

// Surrogate is the online cost model: a single ratio estimator
// beta = sum(observed seconds) / sum(EXPLAIN plan cost) fitted over every
// (configuration, query) pair observed so far. Predicted runtime for an
// unseen pair is beta * PlanCost. With no observations beta falls back to
// 1.0 — harmless, because then every candidate's observed time is zero and
// ranking by summed plan cost is invariant to beta's scale.
type Surrogate struct {
	SumSeconds float64
	SumCost    float64
	Pairs      int
}

// Observe feeds one (plan cost, observed seconds) pair into the fit.
func (s *Surrogate) Observe(cost, seconds float64) {
	if cost <= 0 || math.IsNaN(seconds) || math.IsInf(seconds, 0) {
		return
	}
	s.SumCost += cost
	s.SumSeconds += seconds
	s.Pairs++
}

// Beta returns the fitted seconds-per-cost-unit ratio (1.0 before any
// observation).
func (s *Surrogate) Beta() float64 {
	if s.SumCost <= 0 {
		return 1.0
	}
	return s.SumSeconds / s.SumCost
}

// Predict estimates the runtime of a query with the given plan cost.
func (s *Surrogate) Predict(cost float64) float64 {
	return s.Beta() * cost
}

// Candidate is one racing candidate's view at an elimination boundary.
type Candidate struct {
	ID string
	// Pos is the candidate's original position — the deterministic
	// tie-breaker.
	Pos int
	// Predicted is the candidate's estimated full-workload seconds:
	// observed time so far plus the surrogate's estimate for every query
	// not yet run.
	Predicted float64
}

// Eliminate splits candidates into survivors and eliminated. The best
// Keep(n) candidates by predicted total survive (ties broken by original
// position); both slices come back in original candidate order.
func Eliminate(cands []Candidate, o Options) (keep, drop []Candidate) {
	if len(cands) == 0 {
		return nil, nil
	}
	ranked := append([]Candidate(nil), cands...)
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Predicted != ranked[j].Predicted {
			return ranked[i].Predicted < ranked[j].Predicted
		}
		return ranked[i].Pos < ranked[j].Pos
	})
	k := Keep(len(ranked), o)
	kept := map[int]bool{}
	for _, c := range ranked[:k] {
		kept[c.Pos] = true
	}
	for _, c := range cands {
		if kept[c.Pos] {
			keep = append(keep, c)
		} else {
			drop = append(drop, c)
		}
	}
	return keep, drop
}
