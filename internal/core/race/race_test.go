package race

import (
	"math"
	"reflect"
	"testing"
)

func TestLadder(t *testing.T) {
	cases := []struct {
		n    int
		opts Options
		want []int
	}{
		{0, Options{}, nil},
		{1, Options{}, []int{1}},
		{4, Options{}, []int{1, 2, 4}},
		{8, Options{}, []int{1, 2, 4, 8}},
		{22, Options{}, []int{3, 6, 12, 22}},
		{22, Options{StartFraction: 0.1, Growth: 3}, []int{3, 9, 22}},
		{10, Options{DisableElimination: true}, []int{10}},
		{5, Options{StartFraction: 1}, []int{5}},
	}
	for _, c := range cases {
		got := Ladder(c.n, c.opts)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Ladder(%d, %+v) = %v, want %v", c.n, c.opts, got, c.want)
		}
	}
}

func TestLadderMonotoneEndsAtN(t *testing.T) {
	for n := 1; n <= 200; n++ {
		l := Ladder(n, Options{})
		for i := 1; i < len(l); i++ {
			if l[i] <= l[i-1] {
				t.Fatalf("n=%d: ladder %v not strictly increasing", n, l)
			}
		}
		if l[len(l)-1] != n {
			t.Fatalf("n=%d: ladder %v does not end at n", n, l)
		}
	}
}

func TestKeep(t *testing.T) {
	o := Options{FinalSurvivors: 2}
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 2, 5: 3, 10: 5, 21: 11}
	for n, want := range cases {
		if got := Keep(n, o); got != want {
			t.Errorf("Keep(%d) = %d, want %d", n, got, want)
		}
	}
	if got := Keep(3, Options{FinalSurvivors: 3}); got != 3 {
		t.Errorf("Keep(3, final=3) = %d, want 3", got)
	}
}

func TestSurrogate(t *testing.T) {
	var s Surrogate
	if b := s.Beta(); b != 1.0 {
		t.Fatalf("empty surrogate beta = %g, want 1", b)
	}
	s.Observe(100, 2)
	s.Observe(300, 6)
	if b := s.Beta(); math.Abs(b-0.02) > 1e-12 {
		t.Fatalf("beta = %g, want 0.02", b)
	}
	if p := s.Predict(50); math.Abs(p-1.0) > 1e-12 {
		t.Fatalf("predict(50) = %g, want 1", p)
	}
	// Degenerate observations are ignored.
	s.Observe(0, 99)
	s.Observe(-5, 99)
	s.Observe(10, math.Inf(1))
	if b := s.Beta(); math.Abs(b-0.02) > 1e-12 {
		t.Fatalf("beta after junk = %g, want 0.02", b)
	}
}

func TestEliminate(t *testing.T) {
	cands := []Candidate{
		{ID: "a", Pos: 0, Predicted: 5},
		{ID: "b", Pos: 1, Predicted: 3},
		{ID: "c", Pos: 2, Predicted: 9},
		{ID: "d", Pos: 3, Predicted: 3},
		{ID: "e", Pos: 4, Predicted: 7},
	}
	keep, drop := Eliminate(cands, Options{})
	wantKeep := []string{"a", "b", "d"} // 3 of 5 survive; tie b/d broken by position
	var gotKeep []string
	for _, c := range keep {
		gotKeep = append(gotKeep, c.ID)
	}
	if !reflect.DeepEqual(gotKeep, wantKeep) {
		t.Errorf("keep = %v, want %v", gotKeep, wantKeep)
	}
	var gotDrop []string
	for _, c := range drop {
		gotDrop = append(gotDrop, c.ID)
	}
	if !reflect.DeepEqual(gotDrop, []string{"c", "e"}) {
		t.Errorf("drop = %v, want [c e]", gotDrop)
	}
}

func TestEliminateInfLosesTies(t *testing.T) {
	cands := []Candidate{
		{ID: "ok", Pos: 0, Predicted: 1},
		{ID: "broken", Pos: 1, Predicted: math.Inf(1)},
	}
	keep, _ := Eliminate(cands, Options{FinalSurvivors: 1})
	if len(keep) != 1 || keep[0].ID != "ok" {
		t.Fatalf("keep = %+v, want just ok", keep)
	}
}

func TestStateClone(t *testing.T) {
	var nilState *State
	if nilState.Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
	s := &State{Rung: 2, Survivors: []string{"a", "b"}, Done: true}
	c := s.Clone()
	c.Survivors[0] = "x"
	if s.Survivors[0] != "a" {
		t.Fatal("clone shares survivor slice")
	}
	if c.Rung != 2 || !c.Done {
		t.Fatalf("clone lost fields: %+v", c)
	}
}
