package lambdatune

import (
	"fmt"
	"io"

	"lambdatune/internal/core/race"
	"lambdatune/internal/core/selector"
	"lambdatune/internal/core/tuner"
	"lambdatune/internal/llm"
	"lambdatune/internal/obs"
)

// EvalStrategy selects how configuration candidates are evaluated during
// selection (Options.Evaluation.Strategy).
type EvalStrategy int

const (
	// FullEvaluation is the paper-faithful default: every candidate runs the
	// full workload under Algorithm 2's geometric timeout schedule.
	FullEvaluation EvalStrategy = iota
	// Racing is successive halving: all candidates run a cheap prefix of the
	// DP-scheduled workload, an online cost surrogate (fitted from EXPLAIN
	// plan costs and observed runtimes) eliminates the dominated half at each
	// rung, and survivors are promoted to longer prefixes. The exact final
	// pass is reserved for the last survivors, so the selected
	// configuration's reported speedup stays exact. Deterministic: the same
	// seed produces the same eliminations at any Parallelism.
	Racing
)

// RacingOptions tunes the Racing strategy. The zero value of every field
// means "use the default", so a nil *RacingOptions is fully defaulted.
type RacingOptions struct {
	// StartFraction is the fraction of the workload evaluated at the first
	// rung (default 0.125; must be in (0, 1]).
	StartFraction float64
	// Growth multiplies the prefix length and rung budget between rungs
	// (default 2; must be >= 1).
	Growth float64
	// FinalSurvivors is how many candidates reach the exact final selection
	// pass (default 2).
	FinalSurvivors int
	// DisableElimination runs the racing machinery without eliminating
	// anyone — a single full-length rung. Used by equivalence tests.
	DisableElimination bool
}

func (r *RacingOptions) toRace() race.Options {
	if r == nil {
		return race.Options{}
	}
	return race.Options{
		StartFraction:      r.StartFraction,
		Growth:             r.Growth,
		FinalSurvivors:     r.FinalSurvivors,
		DisableElimination: r.DisableElimination,
	}
}

// EvaluationOptions groups the knobs of the configuration-selection phase.
type EvaluationOptions struct {
	// Parallelism is the number of concurrent evaluation workers (simulated
	// DBMS replicas). 0 or 1 evaluates sequentially; higher values evaluate
	// each round's candidates concurrently with identical selection decisions
	// (same best configuration, same speedup) and lower wall-clock time.
	// Negative is invalid. Runs with Faults installed always evaluate
	// sequentially.
	Parallelism int
	// InitialTimeout is the first evaluation round's per-configuration
	// timeout in seconds (paper default: 10). 0 means the default; negative
	// is invalid.
	InitialTimeout float64
	// Alpha is the geometric timeout growth factor, >= 2 (paper default:
	// 10). 0 means the default; values in (0, 2) are invalid.
	Alpha float64
	// Strategy selects full evaluation (default) or racing.
	Strategy EvalStrategy
	// Racing tunes the Racing strategy; nil uses the defaults. Setting it
	// without Strategy: Racing is invalid.
	Racing *RacingOptions
}

// DurabilityOptions groups crash-recovery knobs.
type DurabilityOptions struct {
	// CheckpointDir, when set, makes the run crash-recoverable: its full
	// resumable state (candidate pool, consumed LLM samples, selector round
	// bookkeeping, virtual clock, fault-injector position) is durably
	// checkpointed into this directory — fsync'd and atomically renamed —
	// after LLM sampling completes and after every selection round. The
	// checkpoint file is named after the workload and seed, so concurrent
	// runs with different seeds do not collide.
	CheckpointDir string
	// Resume, when true, continues a previously checkpointed run from
	// CheckpointDir instead of starting over: prompt generation and LLM
	// sampling are skipped, and selection picks up at the saved round. A run
	// killed at a checkpoint boundary and resumed this way selects the same
	// configuration — byte for byte — as the uninterrupted run. A corrupt
	// live checkpoint (torn write) silently falls back to the previous
	// generation (Result.CheckpointFellBack reports it); a checkpoint from a
	// different workload or differently configured run is refused with
	// ErrCheckpointMismatch.
	Resume bool
}

// ObservabilityOptions groups the run's telemetry sinks.
type ObservabilityOptions struct {
	// Trace, when set, records the run as a span tree (see Trace). Injected
	// faults appear as events on the trace root.
	Trace *Trace
	// Metrics, when set, receives the run's tuner_* counters and gauges —
	// plus the backend_* surface series when the database is instrumented
	// (see Database.Instrument).
	Metrics *Metrics
	// Progress, when set, receives live one-line narration of the run
	// (rounds, timeouts, best-so-far improvements) stamped with virtual
	// timestamps — e.g. os.Stderr.
	Progress io.Writer
}

// Options configures a tuning run; start from DefaultOptions. The zero
// value of every field is meaningful (documented per field), so a partially
// filled struct is valid as long as Validate accepts it.
//
// Evaluation, durability, and observability knobs live in the Evaluation,
// Durability, and Observability groups. The corresponding flat fields
// (InitialTimeout, Alpha, Parallelism, Trace, Metrics, Progress,
// CheckpointDir, Resume) are deprecated aliases kept for one release:
// Validate reconciles them into the groups, and setting both a flat field
// and its grouped twin to different values is an error.
type Options struct {
	// Samples is k, the number of candidate configurations requested from
	// the LLM (paper default: 5). 0 means the default; negative is invalid.
	Samples int
	// Temperature controls LLM randomization. 0 is a valid setting and
	// means greedy decoding; set a negative value to inherit the paper
	// default (0.7), which DefaultOptions does for you.
	Temperature float64
	// TokenBudget bounds the prompt's workload-representation tokens
	// (0 = fit to the model limit; negative is invalid).
	TokenBudget int
	// Seed drives the deterministic parts of scheduling (0 is a valid seed).
	Seed int64
	// Tenant attributes the run to a tenant when it executes on a shared
	// Runtime: LLM circuit-breaker state and in-flight bounds are isolated
	// per tenant, while memo namespaces are shared across tenants with
	// identical schema and workload (reuse never leaks data — only
	// deterministic recomputation results). "" means the default tenant.
	// Standalone (one-shot) runs ignore it, and it never affects tuning
	// outcomes — checkpoints taken under one tenant resume under another.
	Tenant string
	// Resilience, when set, hardens the LLM boundary (retries, backoff,
	// circuit breaker, fallback). Nil leaves the client unwrapped.
	Resilience *ResilienceOptions
	// Faults, when set, injects deterministic faults into the run. Nil
	// injects nothing.
	Faults *FaultPlan

	// Evaluation groups the configuration-selection knobs: parallelism,
	// timeout schedule, and evaluation strategy (full or racing).
	Evaluation EvaluationOptions
	// Durability groups the crash-recovery knobs (checkpointing, resume).
	Durability DurabilityOptions
	// Observability groups the telemetry sinks (trace, metrics, progress).
	Observability ObservabilityOptions

	// InitialTimeout is the first round's per-configuration timeout.
	//
	// Deprecated: set Evaluation.InitialTimeout.
	InitialTimeout float64
	// Alpha is the geometric timeout growth factor.
	//
	// Deprecated: set Evaluation.Alpha.
	Alpha float64
	// Parallelism is the number of concurrent evaluation workers.
	//
	// Deprecated: set Evaluation.Parallelism.
	Parallelism int
	// Trace records the run as a span tree.
	//
	// Deprecated: set Observability.Trace.
	Trace *Trace
	// Metrics receives the run's metric series.
	//
	// Deprecated: set Observability.Metrics.
	Metrics *Metrics
	// Progress receives live one-line narration of the run.
	//
	// Deprecated: set Observability.Progress.
	Progress io.Writer
	// CheckpointDir makes the run crash-recoverable.
	//
	// Deprecated: set Durability.CheckpointDir.
	CheckpointDir string
	// Resume continues a previously checkpointed run.
	//
	// Deprecated: set Durability.Resume.
	Resume bool
}

// DefaultOptions mirrors the paper's experimental setup (§6.1). Zero-valued
// knobs (timeout schedule, parallelism) keep their documented defaults, so
// the returned Options carry only the values that differ from Go zero
// values.
func DefaultOptions() Options {
	return Options{Samples: 5, Temperature: 0.7, Seed: 1}
}

// normalized reconciles the deprecated flat alias fields into their groups
// and returns an Options whose groups are authoritative (the flat fields are
// zeroed). A flat field and its grouped twin set to different non-zero
// values is a conflict, reported as ErrInvalidOptions.
func (o Options) normalized() (Options, error) {
	conflict := func(flat, grouped string) error {
		return fmt.Errorf("%w: deprecated Options.%s and Options.%s disagree; set only %s",
			ErrInvalidOptions, flat, grouped, grouped)
	}
	e, d, ob := &o.Evaluation, &o.Durability, &o.Observability
	switch {
	case o.InitialTimeout == 0:
	case e.InitialTimeout == 0:
		e.InitialTimeout = o.InitialTimeout
	case e.InitialTimeout != o.InitialTimeout:
		return o, conflict("InitialTimeout", "Evaluation.InitialTimeout")
	}
	switch {
	case o.Alpha == 0:
	case e.Alpha == 0:
		e.Alpha = o.Alpha
	case e.Alpha != o.Alpha:
		return o, conflict("Alpha", "Evaluation.Alpha")
	}
	switch {
	case o.Parallelism == 0:
	case e.Parallelism == 0:
		e.Parallelism = o.Parallelism
	case e.Parallelism != o.Parallelism:
		return o, conflict("Parallelism", "Evaluation.Parallelism")
	}
	switch {
	case o.Trace == nil:
	case ob.Trace == nil:
		ob.Trace = o.Trace
	case ob.Trace != o.Trace:
		return o, conflict("Trace", "Observability.Trace")
	}
	switch {
	case o.Metrics == nil:
	case ob.Metrics == nil:
		ob.Metrics = o.Metrics
	case ob.Metrics != o.Metrics:
		return o, conflict("Metrics", "Observability.Metrics")
	}
	// io.Writer values are not reliably comparable, so both sinks being set
	// is a conflict even if they might be the same writer.
	switch {
	case o.Progress == nil:
	case ob.Progress == nil:
		ob.Progress = o.Progress
	default:
		return o, conflict("Progress", "Observability.Progress")
	}
	switch {
	case o.CheckpointDir == "":
	case d.CheckpointDir == "":
		d.CheckpointDir = o.CheckpointDir
	case d.CheckpointDir != o.CheckpointDir:
		return o, conflict("CheckpointDir", "Durability.CheckpointDir")
	}
	// Resume is a bool: true in either place means resume.
	d.Resume = d.Resume || o.Resume
	o.InitialTimeout, o.Alpha, o.Parallelism = 0, 0, 0
	o.Trace, o.Metrics, o.Progress = nil, nil, nil
	o.CheckpointDir, o.Resume = "", false
	return o, nil
}

// Validate reports whether the options describe a runnable configuration.
// Every violation is wrapped in ErrInvalidOptions (check with errors.Is);
// the message names the offending field. Validation reconciles the
// deprecated flat alias fields into their groups first, so a flat field and
// its grouped twin disagreeing is itself a violation. TuneContext validates
// for you.
func (o Options) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidOptions, fmt.Sprintf(format, args...))
	}
	n, err := o.normalized()
	if err != nil {
		return err
	}
	if n.Samples < 0 {
		return bad("Samples must be >= 0, got %d", n.Samples)
	}
	if n.TokenBudget < 0 {
		return bad("TokenBudget must be >= 0, got %d", n.TokenBudget)
	}
	e := n.Evaluation
	if e.InitialTimeout < 0 {
		return bad("Evaluation.InitialTimeout must be >= 0, got %g", e.InitialTimeout)
	}
	if e.Alpha != 0 && e.Alpha < 2 {
		return bad("Evaluation.Alpha must be 0 (default) or >= 2, got %g", e.Alpha)
	}
	if e.Parallelism < 0 {
		return bad("Evaluation.Parallelism must be >= 0, got %d", e.Parallelism)
	}
	switch e.Strategy {
	case FullEvaluation, Racing:
	default:
		return bad("Evaluation.Strategy must be FullEvaluation or Racing, got %d", e.Strategy)
	}
	if r := e.Racing; r != nil {
		if e.Strategy != Racing {
			return bad("Evaluation.Racing is set but Evaluation.Strategy is not Racing")
		}
		if r.StartFraction < 0 || r.StartFraction > 1 {
			return bad("Evaluation.Racing.StartFraction must be in [0,1], got %g", r.StartFraction)
		}
		if r.Growth != 0 && r.Growth < 1 {
			return bad("Evaluation.Racing.Growth must be 0 (default) or >= 1, got %g", r.Growth)
		}
		if r.FinalSurvivors < 0 {
			return bad("Evaluation.Racing.FinalSurvivors must be >= 0, got %d", r.FinalSurvivors)
		}
	}
	if f := n.Faults; f != nil {
		if f.LLMRate < 0 || f.LLMRate > 1 {
			return bad("Faults.LLMRate must be in [0,1], got %g", f.LLMRate)
		}
		if f.EngineRate < 0 || f.EngineRate > 1 {
			return bad("Faults.EngineRate must be in [0,1], got %g", f.EngineRate)
		}
		if f.CrashAfterRound < 0 {
			return bad("Faults.CrashAfterRound must be >= 0, got %d", f.CrashAfterRound)
		}
		if f.CrashAfterSaves < 0 {
			return bad("Faults.CrashAfterSaves must be >= 0, got %d", f.CrashAfterSaves)
		}
		if (f.CrashAfterRound > 0 || f.CrashAfterSaves > 0) && n.Durability.CheckpointDir == "" {
			return bad("Faults crash kill points require Durability.CheckpointDir")
		}
	}
	if n.Durability.Resume && n.Durability.CheckpointDir == "" {
		return bad("Durability.Resume requires Durability.CheckpointDir")
	}
	return nil
}

// toTuner maps normalized public options onto the internal tuner's. The
// receiver must already have been through normalized().
func (o Options) toTuner() tuner.Options {
	t := tuner.DefaultOptions()
	if o.Samples > 0 {
		t.Samples = o.Samples
	}
	// Temperature 0 is meaningful (greedy decoding); only a negative value
	// falls back to the default.
	if o.Temperature >= 0 {
		t.Temperature = o.Temperature
	}
	if o.TokenBudget > 0 {
		t.Prompt.TokenBudget = o.TokenBudget
	}
	e := o.Evaluation
	if e.InitialTimeout > 0 {
		t.Selector.InitialTimeout = e.InitialTimeout
	}
	if e.Alpha >= 2 {
		t.Selector.Alpha = e.Alpha
	}
	t.Selector.Parallelism = e.Parallelism
	if e.Strategy == Racing {
		t.Selector.Strategy = selector.Racing
		t.Selector.Racing = e.Racing.toRace()
	}
	t.Seed = o.Seed
	t.Resilience = o.Resilience.toLLM()
	if tr := o.Observability.Trace; tr != nil {
		t.Trace = tr.tr
	}
	if m := o.Observability.Metrics; m != nil {
		t.Metrics = m.reg
	}
	if p := o.Observability.Progress; p != nil {
		t.Progress = obs.NewConsoleReporter(p)
	}
	return t
}

// ResilienceOptions hardens the LLM boundary of a tuning run: retries with
// exponential backoff and seeded jitter, per-call deadlines, a circuit
// breaker, and an optional fallback client. All waiting is charged to the
// database's virtual clock, so resilience costs show up in
// Result.TuningSeconds exactly as real wall-clock retries would. Zero-valued
// fields fall back to production defaults.
type ResilienceOptions struct {
	// MaxRetries is the number of re-attempts after a failed LLM call
	// (default 3; negative disables retries).
	MaxRetries int
	// InitialBackoffSeconds is the virtual wait before the first retry
	// (default 1); each further retry multiplies it by BackoffFactor
	// (default 2) up to MaxBackoffSeconds (default 30), randomized by
	// ±Jitter fraction (default 0.25, seeded — runs stay reproducible).
	InitialBackoffSeconds float64
	BackoffFactor         float64
	MaxBackoffSeconds     float64
	Jitter                float64
	// CallTimeoutSeconds is the per-call deadline (default 60): a failed
	// call never costs more virtual time than this.
	CallTimeoutSeconds float64
	// BreakerThreshold trips the circuit breaker after this many
	// consecutive failed calls (default 4; negative disables it);
	// BreakerCooldownSeconds is how long it stays open (default 120).
	BreakerThreshold       int
	BreakerCooldownSeconds float64
	// Fallback is consulted when retries are exhausted or the breaker is
	// open (optional; e.g. a second model or a canned-config client).
	Fallback Client
}

func (r *ResilienceOptions) toLLM() *llm.ResilienceOptions {
	if r == nil {
		return nil
	}
	return &llm.ResilienceOptions{
		MaxRetries:       r.MaxRetries,
		InitialBackoff:   r.InitialBackoffSeconds,
		BackoffFactor:    r.BackoffFactor,
		MaxBackoff:       r.MaxBackoffSeconds,
		Jitter:           r.Jitter,
		CallTimeout:      r.CallTimeoutSeconds,
		BreakerThreshold: r.BreakerThreshold,
		BreakerCooldown:  r.BreakerCooldownSeconds,
		Fallback:         r.Fallback,
	}
}

// FaultPlan injects deterministic faults into a tuning run, for resilience
// testing (see internal/faults for the taxonomy). Rates are probabilities
// in [0,1]; the aggregate LLM rate is spread over transient errors,
// rate-limit bursts, truncated scripts, and garbage completions, the engine
// rate over query aborts and index-build failures.
type FaultPlan struct {
	// LLMRate is the per-call probability of an injected LLM fault.
	LLMRate float64
	// EngineRate is the per-operation probability of an injected engine
	// fault (query abort, index-build failure).
	EngineRate float64
	// Seed drives the injected fault sequence (0 = Options.Seed).
	Seed int64
	// CrashAfterRound, when > 0, simulates a crash immediately after the
	// durable checkpoint that closes selection round N: the run returns an
	// error matching ErrKilled with the checkpoint already on disk — exactly
	// the state a real crash leaves behind. Requires a checkpoint directory
	// (Options.Durability.CheckpointDir); resume the run with
	// Options.Durability.Resume.
	CrashAfterRound int
	// CrashAfterSaves, when > 0, crashes after the Nth durable checkpoint
	// save regardless of its content (save 1 is the post-sampling
	// checkpoint). The chaos harness uses this to sweep every checkpoint
	// boundary without knowing the round structure in advance. Requires a
	// checkpoint directory.
	CrashAfterSaves int
}
