package lambdatune

import (
	"errors"

	"lambdatune/internal/core/selector"
	"lambdatune/internal/core/tuner"
	"lambdatune/internal/engine"
	"lambdatune/internal/faults"
	"lambdatune/internal/runstate"
)

// Sentinel errors returned by TuneContext and friends; match them with
// errors.Is. Errors carrying structured detail (ConfigRejectedError) are
// matched with errors.As.
var (
	// ErrInvalidOptions wraps every Options.Validate violation; the message
	// names the offending field.
	ErrInvalidOptions = errors.New("lambdatune: invalid options")

	// ErrEmptyWorkload reports a nil or zero-query workload.
	ErrEmptyWorkload = errors.New("lambdatune: empty workload")

	// ErrNoUsableSample reports that every LLM sample failed or produced an
	// unparseable configuration script; the wrapped error joins the
	// per-sample failures.
	ErrNoUsableSample = tuner.ErrNoUsableSample

	// ErrBudgetExhausted reports that the evaluation round budget ran out
	// before any candidate configuration completed the workload.
	ErrBudgetExhausted = selector.ErrBudgetExhausted

	// ErrKilled reports a simulated crash at a chaos kill point
	// (FaultPlan.CrashAfterRound / CrashAfterSaves). The checkpoint the run
	// died after is durable; resume with Options.Durability.Resume.
	ErrKilled = faults.ErrKilled

	// ErrCheckpointCorrupt reports a checkpoint file that failed its
	// length or CRC-32 verification — a torn write, truncation, or external
	// damage — with no usable previous generation to fall back to.
	ErrCheckpointCorrupt = runstate.ErrCheckpointCorrupt

	// ErrCheckpointVersion reports a checkpoint with an unknown schema
	// version (written by an incompatible build).
	ErrCheckpointVersion = runstate.ErrCheckpointVersion

	// ErrCheckpointMismatch reports a resume attempt against a checkpoint
	// taken by a different run — another workload, other selection-relevant
	// options, or another fault seed.
	ErrCheckpointMismatch = runstate.ErrCheckpointMismatch

	// ErrRuntimeClosed reports a Benchmark or Tune call on a Runtime after
	// Close. In-flight jobs at Close time still finish normally.
	ErrRuntimeClosed = errors.New("lambdatune: runtime closed")
)

// ConfigRejectedError reports a configuration script (an LLM response or an
// ApplyScript input) that could not be accepted, with the offending
// statement and the reason. Retrieve it with errors.As:
//
//	var rejected *lambdatune.ConfigRejectedError
//	if errors.As(err, &rejected) {
//		log.Printf("bad statement %q: %s", rejected.Stmt, rejected.Reason)
//	}
type ConfigRejectedError = engine.ConfigRejectedError
