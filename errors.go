package lambdatune

import (
	"errors"

	"lambdatune/internal/core/selector"
	"lambdatune/internal/core/tuner"
	"lambdatune/internal/engine"
)

// Sentinel errors returned by TuneContext and friends; match them with
// errors.Is. Errors carrying structured detail (ConfigRejectedError) are
// matched with errors.As.
var (
	// ErrInvalidOptions wraps every Options.Validate violation; the message
	// names the offending field.
	ErrInvalidOptions = errors.New("lambdatune: invalid options")

	// ErrEmptyWorkload reports a nil or zero-query workload.
	ErrEmptyWorkload = errors.New("lambdatune: empty workload")

	// ErrNoUsableSample reports that every LLM sample failed or produced an
	// unparseable configuration script; the wrapped error joins the
	// per-sample failures.
	ErrNoUsableSample = tuner.ErrNoUsableSample

	// ErrBudgetExhausted reports that the evaluation round budget ran out
	// before any candidate configuration completed the workload.
	ErrBudgetExhausted = selector.ErrBudgetExhausted
)

// ConfigRejectedError reports a configuration script (an LLM response or an
// ApplyScript input) that could not be accepted, with the offending
// statement and the reason. Retrieve it with errors.As:
//
//	var rejected *lambdatune.ConfigRejectedError
//	if errors.As(err, &rejected) {
//		log.Printf("bad statement %q: %s", rejected.Stmt, rejected.Reason)
//	}
type ConfigRejectedError = engine.ConfigRejectedError
