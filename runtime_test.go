package lambdatune

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// runtimeOpts builds the standard test options: paper defaults, fixed seed,
// explicit parallelism.
func runtimeOpts(seed int64, parallelism int) Options {
	opts := DefaultOptions()
	opts.Seed = seed
	opts.Evaluation.Parallelism = parallelism
	return opts
}

// resultKey condenses the deterministic outcome of a run — everything the
// golden contract pins. Wall-clock fields are deliberately excluded.
func resultKey(r *Result) string {
	return fmt.Sprintf("best=%q bestSeconds=%.17g defaultSeconds=%.17g tuningSeconds=%.17g candidates=%d",
		r.BestScript, r.BestSeconds, r.DefaultSeconds, r.TuningSeconds, r.Candidates)
}

// TestRuntimeGoldenSharedVsStandalone is the tentpole's determinism
// contract: the golden E1 run (tpch-1 / Postgres / seed 1) selects a
// byte-identical configuration at Parallelism 1 and 4, whether run
// standalone or on a shared Runtime concurrently with another job.
func TestRuntimeGoldenSharedVsStandalone(t *testing.T) {
	for _, p := range []int{1, 4} {
		// Standalone reference run.
		db, w, err := Benchmark("tpch-1", Postgres)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := db.Tune(w, NewSimulatedLLM(1), runtimeOpts(1, p))
		if err != nil {
			t.Fatal(err)
		}

		// Second reference with another seed (the concurrent "other job").
		db2, w2, err := Benchmark("tpch-1", Postgres)
		if err != nil {
			t.Fatal(err)
		}
		ref2, err := db2.Tune(w2, NewSimulatedLLM(7), runtimeOpts(7, p))
		if err != nil {
			t.Fatal(err)
		}

		// Shared runtime: both jobs run concurrently, with a slot gate
		// tighter than the combined worker count to exercise contention.
		rt := NewRuntime(RuntimeOptions{EvalSlots: 2})
		defer rt.Close()
		var (
			wg         sync.WaitGroup
			got, got2  *Result
			err1, err2 error
		)
		run := func(seed int64, tenant string, out **Result, errOut *error) {
			defer wg.Done()
			jdb, jw, berr := rt.Benchmark("tpch-1", Postgres)
			if berr != nil {
				*errOut = berr
				return
			}
			o := runtimeOpts(seed, p)
			o.Tenant = tenant
			*out, *errOut = rt.TuneContext(context.Background(), jdb, jw, NewSimulatedLLM(seed), o)
		}
		wg.Add(2)
		go run(1, "alpha", &got, &err1)
		go run(7, "beta", &got2, &err2)
		wg.Wait()
		if err1 != nil || err2 != nil {
			t.Fatalf("p=%d: shared runs failed: %v / %v", p, err1, err2)
		}
		if resultKey(got) != resultKey(ref) {
			t.Errorf("p=%d: shared-runtime result diverged from standalone:\n got %s\nwant %s",
				p, resultKey(got), resultKey(ref))
		}
		if resultKey(got2) != resultKey(ref2) {
			t.Errorf("p=%d: co-tenant job diverged from its standalone run:\n got %s\nwant %s",
				p, resultKey(got2), resultKey(ref2))
		}
	}
}

// TestRuntimeCrossJobMemoReuse asserts that a second identical job on the
// same runtime hits the first job's memo entries (cross-job hits > 0) while
// producing a byte-identical result.
func TestRuntimeCrossJobMemoReuse(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{})
	defer rt.Close()
	var last *Result
	for i := 0; i < 2; i++ {
		db, w, err := rt.Benchmark("tpch-1", Postgres)
		if err != nil {
			t.Fatal(err)
		}
		o := runtimeOpts(1, 2)
		o.Tenant = fmt.Sprintf("tenant-%d", i)
		res, err := rt.TuneContext(context.Background(), db, w, NewSimulatedLLM(1), o)
		if err != nil {
			t.Fatal(err)
		}
		if last != nil && resultKey(res) != resultKey(last) {
			t.Fatalf("job %d diverged:\n got %s\nwant %s", i, resultKey(res), resultKey(last))
		}
		last = res
	}
	st := rt.Stats()
	if st.Jobs != 2 || st.Namespaces != 1 {
		t.Fatalf("stats: jobs=%d namespaces=%d, want 2/1", st.Jobs, st.Namespaces)
	}
	if st.MemoCrossJobHits == 0 {
		t.Fatalf("expected cross-job memo hits, got stats %+v", st)
	}
}

// twoSchemaFixtures builds two deliberately different schemas that share
// query names — the worst case for cross-tenant memo leakage — plus a
// per-schema workload.
func twoSchemaFixtures(t *testing.T) (dbA, dbB *Database, wA, wB *Workload) {
	t.Helper()
	mk := func(rows int64, width int) *Database {
		db, err := NewDatabase(Postgres, "shop", []Table{
			{Name: "orders", Rows: rows, Columns: []Column{
				{Name: "id", WidthBytes: 8, Distinct: rows},
				{Name: "customer_id", WidthBytes: 8, Distinct: rows / 10},
				{Name: "total", WidthBytes: width, Distinct: 1000},
			}, PrimaryKey: []string{"id"}},
			{Name: "customers", Rows: rows / 10, Columns: []Column{
				{Name: "id", WidthBytes: 8, Distinct: rows / 10},
				{Name: "region", WidthBytes: 16, Distinct: 50},
			}, PrimaryKey: []string{"id"}},
		}, DefaultHardware)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	queries := map[string]string{
		"q1": "SELECT * FROM orders WHERE total > 100",
		"q2": "SELECT * FROM orders o JOIN customers c ON o.customer_id = c.id WHERE c.region = 'west'",
	}
	mkW := func() *Workload {
		w, err := ParseWorkload("shop", queries)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	return mk(2_000_000, 8), mk(400_000, 64), mkW(), mkW()
}

// TestRuntimeNamespaceIsolation pins the isolation contract: two concurrent
// jobs over different schemas (same workload and query names) must land in
// distinct memo namespaces, never share entries, and match their isolated
// runs exactly.
func TestRuntimeNamespaceIsolation(t *testing.T) {
	dbA, dbB, wA, wB := twoSchemaFixtures(t)
	refA, err := dbA.Tune(wA, NewSimulatedLLM(1), runtimeOpts(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	refB, err := dbB.Tune(wB, NewSimulatedLLM(1), runtimeOpts(1, 2))
	if err != nil {
		t.Fatal(err)
	}

	dbA2, dbB2, wA2, wB2 := twoSchemaFixtures(t)
	rt := NewRuntime(RuntimeOptions{EvalSlots: 2})
	defer rt.Close()
	var (
		wg         sync.WaitGroup
		gotA, gotB *Result
		errA, errB error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		o := runtimeOpts(1, 2)
		o.Tenant = "tenant-a"
		gotA, errA = rt.TuneContext(context.Background(), dbA2, wA2, NewSimulatedLLM(1), o)
	}()
	go func() {
		defer wg.Done()
		o := runtimeOpts(1, 2)
		o.Tenant = "tenant-b"
		gotB, errB = rt.TuneContext(context.Background(), dbB2, wB2, NewSimulatedLLM(1), o)
	}()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("shared runs failed: %v / %v", errA, errB)
	}
	if resultKey(gotA) != resultKey(refA) {
		t.Errorf("tenant-a diverged from isolated run:\n got %s\nwant %s", resultKey(gotA), resultKey(refA))
	}
	if resultKey(gotB) != resultKey(refB) {
		t.Errorf("tenant-b diverged from isolated run:\n got %s\nwant %s", resultKey(gotB), resultKey(refB))
	}
	st := rt.Stats()
	if st.Namespaces != 2 {
		t.Errorf("expected 2 distinct memo namespaces for 2 schemas, got %d", st.Namespaces)
	}
	if st.MemoCrossJobHits != 0 {
		t.Errorf("cross-job hits across different schemas: %d (memo state leaked between namespaces)", st.MemoCrossJobHits)
	}
}

// failingClient always errors — a tenant whose model transport is down.
type failingClient struct{}

func (failingClient) Complete(context.Context, string) (string, error) {
	return "", errors.New("transport down")
}
func (failingClient) Name() string { return "down" }

// TestRuntimeTenantBreakerIsolation pins the breaker-isolation contract: one
// tenant's tripped LLM circuit breaker must not open another tenant's, and
// the healthy tenant's result must match its isolated run.
func TestRuntimeTenantBreakerIsolation(t *testing.T) {
	db, w, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := db.Tune(w, NewSimulatedLLM(1), runtimeOpts(1, 1))
	if err != nil {
		t.Fatal(err)
	}

	rt := NewRuntime(RuntimeOptions{TenantBreakerThreshold: 1})
	defer rt.Close()
	var (
		wg            sync.WaitGroup
		okRes         *Result
		errBad, errOK error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		jdb, jw, berr := rt.Benchmark("tpch-1", Postgres)
		if berr != nil {
			errBad = berr
			return
		}
		o := runtimeOpts(1, 1)
		o.Tenant = "bad"
		_, errBad = rt.TuneContext(context.Background(), jdb, jw, failingClient{}, o)
	}()
	go func() {
		defer wg.Done()
		jdb, jw, berr := rt.Benchmark("tpch-1", Postgres)
		if berr != nil {
			errOK = berr
			return
		}
		o := runtimeOpts(1, 1)
		o.Tenant = "good"
		okRes, errOK = rt.TuneContext(context.Background(), jdb, jw, NewSimulatedLLM(1), o)
	}()
	wg.Wait()

	if !errors.Is(errBad, ErrNoUsableSample) {
		t.Fatalf("failing tenant: want ErrNoUsableSample, got %v", errBad)
	}
	if errOK != nil {
		t.Fatalf("healthy tenant failed: %v", errOK)
	}
	if resultKey(okRes) != resultKey(ref) {
		t.Errorf("healthy tenant diverged from isolated run:\n got %s\nwant %s", resultKey(okRes), resultKey(ref))
	}
	if !rt.gateway.BreakerOpen("bad") {
		t.Error("failing tenant's breaker should be open")
	}
	if rt.gateway.BreakerOpen("good") {
		t.Error("healthy tenant's breaker opened — breaker state leaked across tenants")
	}
	if trips := rt.gateway.Trips("good"); trips != 0 {
		t.Errorf("healthy tenant recorded %d breaker trips", trips)
	}
}

// TestRuntimeClosed pins ErrRuntimeClosed on post-Close use.
func TestRuntimeClosed(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{})
	db, w, err := rt.Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Benchmark("tpch-1", Postgres); !errors.Is(err, ErrRuntimeClosed) {
		t.Fatalf("Benchmark after Close: want ErrRuntimeClosed, got %v", err)
	}
	if _, err := rt.Tune(db, w, NewSimulatedLLM(1), runtimeOpts(1, 1)); !errors.Is(err, ErrRuntimeClosed) {
		t.Fatalf("Tune after Close: want ErrRuntimeClosed, got %v", err)
	}
}
