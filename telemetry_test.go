package lambdatune

import (
	"bytes"
	"strings"
	"testing"
)

// tuneTelemetry runs one tuning run on a fresh tpch-1 copy with full
// telemetry (trace + metrics + instrumented backend) at the given worker
// count, returning the result and the run's telemetry handles.
func tuneTelemetry(t *testing.T, parallelism int) (*Result, *Trace, *Metrics) {
	t.Helper()
	db, w, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	db.Instrument()
	opts := DefaultOptions()
	opts.Evaluation.Parallelism = parallelism
	opts.Observability.Trace = NewTrace()
	opts.Observability.Metrics = NewMetrics()
	res, err := db.Tune(w, NewSimulatedLLM(1), opts)
	if err != nil {
		t.Fatalf("parallelism=%d: %v", parallelism, err)
	}
	return res, opts.Observability.Trace, opts.Observability.Metrics
}

// TestTelemetryUnderParallelEvaluation exercises the instrumented backend and
// the metrics registry under Pool concurrency (Parallelism=4): four workers
// observe surfaces and bump counters concurrently, which the -race run of
// this test validates, and the selection outcome must be byte-identical to an
// untraced run.
func TestTelemetryUnderParallelEvaluation(t *testing.T) {
	res, trace, metrics := tuneTelemetry(t, 4)

	// Selection must be unaffected by telemetry.
	db, w, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Evaluation.Parallelism = 4
	plain, err := db.Tune(w, NewSimulatedLLM(1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScript != plain.BestScript || res.BestSeconds != plain.BestSeconds ||
		res.TuningSeconds != plain.TuningSeconds {
		t.Errorf("telemetry changed the outcome: %v/%v vs %v/%v",
			res.BestSeconds, res.TuningSeconds, plain.BestSeconds, plain.TuningSeconds)
	}

	if trace.Len() == 0 {
		t.Fatal("traced run recorded no spans")
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if got := strings.Count(buf.String(), "\n"); got != trace.Len() {
		t.Errorf("JSONL export has %d lines, want %d", got, trace.Len())
	}

	snap := metrics.Snapshot()
	for _, name := range []string{
		"tuner_rounds_total", "tuner_queries_total", "tuner_index_builds_total",
		"backend_run_query_calls_total", "backend_apply_config_calls_total",
	} {
		if snap[name] <= 0 {
			t.Errorf("metric %s = %v, want > 0", name, snap[name])
		}
	}
	var prom bytes.Buffer
	if err := metrics.WritePrometheus(&prom); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !strings.Contains(prom.String(), "tuner_queries_total") {
		t.Error("Prometheus exposition is missing tuner_queries_total")
	}

	if res.Telemetry == nil {
		t.Fatal("Result.Telemetry is nil on a traced run")
	}
	if res.Telemetry.Spans != trace.Len() {
		t.Errorf("Telemetry.Spans = %d, want %d", res.Telemetry.Spans, trace.Len())
	}
	if len(res.Telemetry.Phases) == 0 || res.Telemetry.Metrics == nil {
		t.Errorf("Telemetry incomplete: %+v", res.Telemetry)
	}
	if !strings.Contains(trace.SummaryTable(), "eval") {
		t.Error("SummaryTable has no eval phase row")
	}
}

// TestTelemetryDeterministicAcrossRuns: two identical traced runs export
// byte-identical JSONL modulo the wall-clock annotation fields, pinned via
// the per-phase summary (virtual costs and span counts only).
func TestTelemetryDeterministicAcrossRuns(t *testing.T) {
	for _, p := range []int{1, 4} {
		_, tr1, _ := tuneTelemetry(t, p)
		_, tr2, _ := tuneTelemetry(t, p)
		if a, b := tr1.Len(), tr2.Len(); a != b {
			t.Errorf("parallelism=%d: span counts differ: %d vs %d", p, a, b)
		}
		sum1 := summaryNoWall(tr1.SummaryTable())
		sum2 := summaryNoWall(tr2.SummaryTable())
		if sum1 != sum2 {
			t.Errorf("parallelism=%d: summaries differ:\n%s\nvs\n%s", p, sum1, sum2)
		}
	}
}

// summaryNoWall strips the trailing wall-ms column, the only nondeterministic
// part of a summary table.
func summaryNoWall(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if i := strings.LastIndex(line, "   "); i > 0 && strings.Contains(line, ".") {
			line = strings.TrimRight(line[:i], " ")
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}
