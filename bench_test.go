package lambdatune

// One testing.B per table and figure of the paper's evaluation (§6), plus
// ablation benches for the design choices called out in DESIGN.md. Each
// bench regenerates its artifact via internal/bench and reports the headline
// number as a custom metric, so `go test -bench=.` reproduces the paper's
// results end to end. Run a single artifact with e.g.
// `go test -bench=BenchmarkTable3 -benchtime=1x`.

import (
	"context"
	"math"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/baselines/udo"
	"lambdatune/internal/bench"
	"lambdatune/internal/core/prompt"
	"lambdatune/internal/core/schedule"
	"lambdatune/internal/core/tuner"
	"lambdatune/internal/engine"
	"lambdatune/internal/llm"
	"lambdatune/internal/workload"
)

const benchSeed = 1

// udoBenchDeadline is the virtual tuning budget BenchmarkUDO grants: five
// hours, the per-baseline budget of the paper's experiments (§6). Long
// budgets are exactly where memoization pays: the hill climber's revisit
// rate — and so the cache hit rate — grows as the walk converges.
const udoBenchDeadline = 18000

// BenchmarkTable3 regenerates Table 3 (E1): the scaled cost of the best
// configuration found by each system across the 14 scenarios. The reported
// metrics are the per-system averages (paper: λ-Tune 1.41 is the lowest).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner()
		rows, err := bench.Table3(r, benchSeed, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderTable3(rows))
			avg := map[string]float64{}
			cnt := map[string]int{}
			for _, row := range rows {
				for _, n := range bench.SystemNames {
					if !math.IsInf(row.Scaled[n], 1) {
						avg[n] += row.Scaled[n]
						cnt[n]++
					}
				}
			}
			b.ReportMetric(avg["λ-Tune"]/float64(cnt["λ-Tune"]), "λ-Tune-avg")
			b.ReportMetric(avg["UDO"]/float64(cnt["UDO"]), "UDO-avg")
		}
	}
}

// BenchmarkTable4 regenerates Table 4 (E2): configurations evaluated per
// baseline on Postgres TPC-H (paper shape: UDO ≫ DB-BERT ≈ GPTuner ≫
// LlamaTune > λ-Tune = 5 > ParamTree = 1).
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner()
		rows, err := bench.Table4(r, benchSeed, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderTable4(rows))
			b.ReportMetric(rows[0].Counts["λ-Tune"], "λ-Tune-evals")
			b.ReportMetric(rows[0].Counts["UDO"], "UDO-evals")
		}
	}
}

// BenchmarkTable5 regenerates Table 5 (E3): the best λ-Tune configuration
// for TPC-H 1GB on Postgres.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t5, err := bench.BuildTable5(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderTable5(t5))
			b.ReportMetric(t5.DefaultSeconds/t5.WorkloadSeconds, "speedup")
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3 (E4): convergence under pure
// parameter tuning (initial PK/FK indexes available).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner()
		figs, err := bench.Convergence(r, benchSeed, 1, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderConvergence(figs))
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4 (E5): convergence when systems may
// create indexes (no initial indexes).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner()
		figs, err := bench.Convergence(r, benchSeed, 1, false)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderConvergence(figs))
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5 (E6): per-query times, λ-Tune vs the
// default configuration on TPC-H 1GB / Postgres (paper: gains or equal
// performance for every query).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure5(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderFigure5(rows))
			worst := math.Inf(1)
			for _, r := range rows {
				if s := r.Default / r.Tuned; s < worst {
					worst = s
				}
			}
			b.ReportMetric(worst, "min-per-query-speedup")
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6 (E7): the component ablation on JOB
// / Postgres (adaptive timeout, query scheduler, workload obfuscation,
// compressor).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure6(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderFigure6(rows))
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7 (E8): best configuration quality as
// a function of the compressor token budget, vs the full-SQL prompt.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure7(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderFigure7(rows))
		}
	}
}

// BenchmarkFigure8 regenerates Figure 8 (E9): λ-Tune's index recommendations
// vs Dexter and the DB2 advisor.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure8(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderFigure8(rows))
		}
	}
}

// BenchmarkOutliers regenerates the §6.3 study (E10): 15 LLM samples for the
// TPC-H prompt with the worst/best runtime ratio (paper: up to ~5x).
func BenchmarkOutliers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := bench.Outliers(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderOutliers(o))
			b.ReportMetric(o.Ratio, "worst/best")
		}
	}
}

// BenchmarkRobustness regenerates the robustness study (E12): λ-Tune under
// injected LLM and engine faults with the resilience layer enabled. The
// reported metric is the worst speedup across the fault grid (graceful
// degradation: it should stay ≥ 1).
func BenchmarkRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Robustness(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.RenderRobustness(rows))
			worst := math.Inf(1)
			for _, r := range rows {
				if r.Err == "" && r.Speedup < worst {
					worst = r.Speedup
				}
			}
			b.ReportMetric(worst, "min-speedup")
		}
	}
}

// planCacheVariants runs fn once per plan-cache setting, as sub-benchmarks.
// The memoization cache only changes host CPU time — tuning results are
// byte-identical either way (see TestGoldenSelectionE1 and DESIGN.md §9) — so the
// on/off ratio is the cache's real-time speedup.
func planCacheVariants(b *testing.B, fn func(b *testing.B, on bool)) {
	for _, on := range []bool{true, false} {
		name := "cache=off"
		if on {
			name = "cache=on"
		}
		b.Run(name, func(b *testing.B) { fn(b, on) })
	}
}

// BenchmarkSelection measures a full λ-Tune tuning run (TPC-H 1GB /
// Postgres) with the plan-memoization caches on and off. The run samples 20
// candidate configurations — the configuration-selection regime where rounds
// repeat: with many candidates in flight, most rounds re-evaluate
// configurations whose remaining-query set did not change, so the round's
// schedule DP and relevance maps (and the repeat plannings beneath them)
// repeat verbatim. Workload parsing is setup, hoisted out of the timed loop.
func BenchmarkSelection(b *testing.B) {
	w := workload.TPCH(1)
	planCacheVariants(b, func(b *testing.B, on bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
			db.SetPlanCache(on)
			opts := tuner.DefaultOptions()
			opts.Seed = benchSeed
			opts.Samples = 20
			tn := tuner.New(db, llm.NewSimClient(benchSeed), opts)
			res, err := tn.Tune(context.Background(), w.Queries)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(res.BestTime, "best-s")
				if st := db.PlanCacheStats(); st.Lookups() > 0 {
					b.ReportMetric(100*st.HitRate(), "hit-%")
				}
			}
		}
	})
}

// BenchmarkUDO measures the UDO baseline's heavy-parameter (physical design)
// search — thousands of repeat measurements under revisited index subsets, the
// plan cache's best case — with the cache on and off. The knob MDP is
// disabled: UDO's hierarchical design runs light parameters in a nested
// tuner, and every knob change rewrites the settings fingerprint, which
// (correctly) invalidates cached plans; the outer index search is the regime
// where measurements actually repeat.
func BenchmarkUDO(b *testing.B) {
	planCacheVariants(b, func(b *testing.B, on bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := workload.TPCH(1)
			db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
			db.SetPlanCache(on)
			u := udo.New(benchSeed)
			u.TuneKnobs = false
			trace := u.Tune(db, w.Queries, udoBenchDeadline)
			if i == 0 {
				b.ReportMetric(trace.BestTime, "best-s")
				if st := db.PlanCacheStats(); st.Lookups() > 0 {
					b.ReportMetric(100*st.HitRate(), "hit-%")
				}
			}
		}
	})
}

// BenchmarkSchedulerAblation measures the DP scheduler's benefit directly:
// expected index-creation cost of the DP order vs the naive workload order
// on JOB with a typical LLM index set.
func BenchmarkSchedulerAblation(b *testing.B) {
	w := workload.JOB()
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	// A representative index set: one per frequently joined column.
	defs := []engine.IndexDef{
		engine.NewIndexDef("cast_info", "movie_id"),
		engine.NewIndexDef("movie_info", "movie_id"),
		engine.NewIndexDef("movie_keyword", "movie_id"),
		engine.NewIndexDef("movie_companies", "movie_id"),
		engine.NewIndexDef("title", "id"),
	}
	indexMap := map[*engine.Query][]engine.IndexDef{}
	for _, q := range w.Queries {
		for _, d := range defs {
			for _, t := range q.Analysis.Tables {
				if t == d.Table {
					indexMap[q] = append(indexMap[q], d)
					break
				}
			}
		}
	}
	items := make([]schedule.Item, len(w.Queries))
	for i, q := range w.Queries {
		m := map[string]engine.IndexDef{}
		for _, d := range indexMap[q] {
			m[d.Key()] = d
		}
		items[i] = schedule.Item{Queries: []*engine.Query{q}, Indexes: m}
	}
	clustered := schedule.Cluster(items, schedule.MaxDPQueries, benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ordered := schedule.OrderDP(clustered, db.IndexCreationSeconds)
		if i == 0 {
			naive := schedule.ExpectedCost(clustered, db.IndexCreationSeconds)
			dp := schedule.ExpectedCost(ordered, db.IndexCreationSeconds)
			b.ReportMetric(naive, "naive-cost")
			b.ReportMetric(dp, "dp-cost")
		}
	}
}

// BenchmarkCompressorAblation compares ILP vs greedy snippet selection
// value at a tight token budget (design-choice ablation from DESIGN.md).
func BenchmarkCompressorAblation(b *testing.B) {
	w := workload.JOB()
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	snips := prompt.CollectSnippets(db, w.Queries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ilpSel, err := prompt.SelectILP(snips, 200)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			greedy := prompt.SelectGreedy(snips, 200)
			b.ReportMetric(ilpSel.Value/1e6, "ilp-value-M")
			b.ReportMetric(greedy.Value/1e6, "greedy-value-M")
		}
	}
}

// BenchmarkAlphaSweep sweeps the geometric timeout factor α (paper §4 proves
// bounds for α ≥ 2; §6.1 uses 10) and reports tuning time per α on TPC-H.
func BenchmarkAlphaSweep(b *testing.B) {
	for _, alpha := range []float64{2, 4, 10, 20} {
		alpha := alpha
		b.Run(alphaName(alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := workload.TPCH(1)
				db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
				opts := tuner.DefaultOptions()
				opts.Selector.Alpha = alpha
				opts.Seed = benchSeed
				tn := tuner.New(db, llm.NewSimClient(benchSeed), opts)
				res, err := tn.Tune(context.Background(), w.Queries)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.TuningSeconds, "tuning-s")
					b.ReportMetric(res.BestTime, "best-s")
				}
			}
		})
	}
}

func alphaName(a float64) string {
	switch a {
	case 2:
		return "alpha=2"
	case 4:
		return "alpha=4"
	case 10:
		return "alpha=10"
	default:
		return "alpha=20"
	}
}
