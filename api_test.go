package lambdatune

import (
	"strings"
	"testing"
)

func TestBenchmarkQuickstart(t *testing.T) {
	db, w, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 22 {
		t.Fatalf("queries: %d", w.Len())
	}
	res, err := db.Tune(w, NewSimulatedLLM(1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup() <= 1 {
		t.Errorf("no speedup: %v", res.Speedup())
	}
	if !strings.Contains(res.BestScript, "ALTER SYSTEM SET") {
		t.Errorf("script:\n%s", res.BestScript)
	}
	if res.Candidates != 5 || res.PromptTokens <= 0 {
		t.Errorf("bookkeeping: %+v", res)
	}
	if len(res.Parameters()) == 0 {
		t.Error("no parameters")
	}
}

func TestBenchmarkUnknown(t *testing.T) {
	if _, _, err := Benchmark("nope", Postgres); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if len(BenchmarkNames()) < 4 {
		t.Error("benchmark list")
	}
}

func TestApplyMatchesMeasurement(t *testing.T) {
	db, w, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Tune(w, NewSimulatedLLM(1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Apply(res); err != nil {
		t.Fatal(err)
	}
	got := db.WorkloadSeconds(w)
	if diff := got - res.BestSeconds; diff > res.BestSeconds*0.01 || diff < -res.BestSeconds*0.01 {
		t.Errorf("applied config runs in %v, tuner measured %v", got, res.BestSeconds)
	}
	db.ResetConfiguration()
	if db.WorkloadSeconds(w) <= got {
		t.Error("reset did not undo tuning")
	}
}

func TestCustomSchemaAndWorkload(t *testing.T) {
	db, err := NewDatabase(Postgres, "shop", []Table{
		{
			Name: "sales", Rows: 5_000_000,
			Columns: []Column{
				{Name: "s_id", WidthBytes: 8, Distinct: 5_000_000},
				{Name: "s_product", WidthBytes: 8, Distinct: 10_000},
				{Name: "s_amount", WidthBytes: 8, Distinct: 100_000},
				{Name: "s_day", WidthBytes: 4, Distinct: 365},
			},
			PrimaryKey:  []string{"s_id"},
			ForeignKeys: []string{"s_product"},
		},
		{
			Name: "products", Rows: 10_000,
			Columns: []Column{
				{Name: "p_id", WidthBytes: 8, Distinct: 10_000},
				{Name: "p_category", WidthBytes: 16, Distinct: 40},
			},
			PrimaryKey: []string{"p_id"},
		},
	}, DefaultHardware)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ParseWorkload("shop", map[string]string{
		"revenue": `SELECT p.p_category, SUM(s.s_amount) FROM sales s, products p
			WHERE s.s_product = p.p_id GROUP BY p.p_category`,
		"daily": `SELECT s.s_day, COUNT(*) FROM sales s WHERE s.s_day BETWEEN 100 AND 200 GROUP BY s.s_day`,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Tune(w, NewSimulatedLLM(7), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestSeconds <= 0 {
		t.Errorf("best: %v", res.BestSeconds)
	}
}

func TestParseWorkloadBadSQL(t *testing.T) {
	if _, err := ParseWorkload("x", map[string]string{"bad": "DELETE FROM t"}); err == nil {
		t.Error("bad SQL accepted")
	}
}

func TestNewDatabaseBadSchema(t *testing.T) {
	_, err := NewDatabase(Postgres, "bad", []Table{{Name: "t", Rows: 0, Columns: []Column{{Name: "c", WidthBytes: 4, Distinct: 1}}}}, DefaultHardware)
	if err == nil {
		t.Error("invalid schema accepted")
	}
}

func TestApplyScript(t *testing.T) {
	db, w, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	before := db.WorkloadSeconds(w)
	err = db.ApplyScript(`
ALTER SYSTEM SET shared_buffers = '15GB';
ALTER SYSTEM SET max_parallel_workers_per_gather = 8;
CREATE INDEX idx ON lineitem (l_orderkey);
`)
	if err != nil {
		t.Fatal(err)
	}
	if after := db.WorkloadSeconds(w); after >= before {
		t.Errorf("script had no effect: %v vs %v", after, before)
	}
}

func TestMySQLFlavorViaAPI(t *testing.T) {
	db, w, err := Benchmark("tpch-1", MySQL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Tune(w, NewSimulatedLLM(1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.BestScript, "SET GLOBAL") {
		t.Errorf("MySQL script dialect:\n%s", res.BestScript)
	}
}

func TestQuerySecondsPerQuery(t *testing.T) {
	db, w, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	times := db.QuerySeconds(w)
	if len(times) != 22 {
		t.Fatalf("per-query times: %d", len(times))
	}
	var sum float64
	for _, v := range times {
		sum += v
	}
	if total := db.WorkloadSeconds(w); sum < total*0.99 || sum > total*1.01 {
		t.Errorf("per-query sum %v vs workload %v", sum, total)
	}
}

func TestTokenBudgetOption(t *testing.T) {
	db, w, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.TokenBudget = 100
	res, err := db.Tune(w, NewSimulatedLLM(1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.PromptTokens > 400 {
		t.Errorf("prompt tokens %d despite 100-token workload budget", res.PromptTokens)
	}
}

func TestWithRetrieval(t *testing.T) {
	db, w, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	client := WithRetrieval(NewSimulatedLLM(1), nil)
	if !strings.Contains(client.Name(), "rag") {
		t.Errorf("client name: %s", client.Name())
	}
	res, err := db.Tune(w, client, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup() <= 1 {
		t.Errorf("RAG-augmented tuning found no speedup: %v", res.Speedup())
	}
}
