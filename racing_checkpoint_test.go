package lambdatune_test

import (
	"errors"
	"testing"

	"lambdatune"
)

// TestRacingCheckpointCrashResumeSweep kills a racing run after every
// durable checkpoint in turn — including the rung-boundary saves the racing
// strategy writes inside a selection round — and resumes each killed run;
// every resumed run must reproduce the uninterrupted reference exactly.
// It also proves the rung saves exist: a racing run checkpoints strictly
// more often than a full-evaluation run of the same shape.
func TestRacingCheckpointCrashResumeSweep(t *testing.T) {
	const samples = 8
	newRun := func() (*lambdatune.Database, *lambdatune.Workload) {
		db, w, err := lambdatune.Benchmark("tpch-1", lambdatune.Postgres)
		if err != nil {
			t.Fatal(err)
		}
		return db, w
	}
	baseOpts := func(strategy lambdatune.EvalStrategy) lambdatune.Options {
		opts := lambdatune.DefaultOptions()
		opts.Samples = samples
		opts.Evaluation.Strategy = strategy
		return opts
	}

	// Uninterrupted racing reference.
	db, w := newRun()
	want, err := db.Tune(w, lambdatune.NewSimulatedLLM(1), baseOpts(lambdatune.Racing))
	if err != nil {
		t.Fatal(err)
	}

	// countSaves runs with CrashAfterSaves = 1, 2, 3, … until the kill no
	// longer fires (the run completed: every checkpoint has been exercised)
	// and returns how many checkpoints the run writes. When check is set,
	// each killed run is resumed and compared against the reference.
	countSaves := func(strategy lambdatune.EvalStrategy, check bool) int {
		for saves := 1; ; saves++ {
			dir := t.TempDir()
			db, w := newRun()
			opts := baseOpts(strategy)
			opts.Durability.CheckpointDir = dir
			opts.Faults = &lambdatune.FaultPlan{CrashAfterSaves: saves}
			_, err := db.Tune(w, lambdatune.NewSimulatedLLM(1), opts)
			if err == nil {
				// The kill point never fired: saves-1 is the checkpoint count.
				return saves - 1
			}
			if !errors.Is(err, lambdatune.ErrKilled) {
				t.Fatalf("saves=%d: expected ErrKilled, got %v", saves, err)
			}
			if !check {
				continue
			}
			db, w = newRun()
			opts = baseOpts(strategy)
			opts.Durability.CheckpointDir = dir
			opts.Durability.Resume = true
			opts.Faults = nil
			got, err := db.Tune(w, lambdatune.NewSimulatedLLM(1), opts)
			if err != nil {
				t.Fatalf("saves=%d: resume: %v", saves, err)
			}
			if !got.Resumed {
				t.Errorf("saves=%d: Resumed not reported", saves)
			}
			if got.BestScript != want.BestScript {
				t.Errorf("saves=%d: resumed best script differs:\n--- want\n%s\n--- got\n%s",
					saves, want.BestScript, got.BestScript)
			}
			if got.BestSeconds != want.BestSeconds {
				t.Errorf("saves=%d: best seconds %v != %v", saves, got.BestSeconds, want.BestSeconds)
			}
			if got.TuningSeconds != want.TuningSeconds {
				t.Errorf("saves=%d: tuning seconds %v != %v", saves, got.TuningSeconds, want.TuningSeconds)
			}
		}
	}

	racingSaves := countSaves(lambdatune.Racing, true)
	fullSaves := countSaves(lambdatune.FullEvaluation, false)
	t.Logf("checkpoint saves: racing %d, full %d", racingSaves, fullSaves)
	if racingSaves <= fullSaves {
		t.Errorf("racing run saved %d checkpoints, full run %d — rung-boundary saves missing",
			racingSaves, fullSaves)
	}
}
