package lambdatune

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

const testSchemaJSON = `{
  "name": "shop",
  "tables": [
    {
      "name": "sales", "rows": 1000000,
      "columns": [
        {"name": "s_id", "widthBytes": 8, "distinct": 1000000},
        {"name": "s_product", "widthBytes": 8, "distinct": 5000}
      ],
      "primaryKey": ["s_id"], "foreignKeys": ["s_product"]
    },
    {
      "name": "products", "rows": 5000,
      "columns": [{"name": "p_id", "widthBytes": 8, "distinct": 5000}],
      "primaryKey": ["p_id"]
    }
  ]
}`

func TestLoadSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "schema.json")
	writeFile(t, path, testSchemaJSON)
	name, tables, err := LoadSchema(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != "shop" || len(tables) != 2 {
		t.Fatalf("name=%q tables=%d", name, len(tables))
	}
	if tables[0].Columns[1].Distinct != 5000 {
		t.Errorf("column stats: %+v", tables[0].Columns[1])
	}
	if _, err := NewDatabase(Postgres, name, tables, DefaultHardware); err != nil {
		t.Fatalf("loaded schema unusable: %v", err)
	}
}

func TestLoadSchemaErrors(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LoadSchema(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	writeFile(t, bad, "{not json")
	if _, _, err := LoadSchema(bad); err == nil {
		t.Error("bad JSON accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	writeFile(t, empty, `{"name": "x", "tables": []}`)
	if _, _, err := LoadSchema(empty); err == nil {
		t.Error("empty schema accepted")
	}
}

func TestLoadSchemaNameDefaultsToFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "warehouse.json")
	writeFile(t, path, `{"tables": [{"name": "t", "rows": 10,
		"columns": [{"name": "c", "widthBytes": 4, "distinct": 10}]}]}`)
	name, _, err := LoadSchema(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != "warehouse" {
		t.Errorf("name: %q", name)
	}
}

func TestLoadQueriesDir(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "q1.sql"), "SELECT s.s_id FROM sales s WHERE s.s_product = 7;")
	writeFile(t, filepath.Join(dir, "q2.sql"), `SELECT COUNT(*) FROM sales s, products p
		WHERE s.s_product = p.p_id`)
	writeFile(t, filepath.Join(dir, "notes.txt"), "not a query")
	w, err := LoadQueriesDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 {
		t.Fatalf("queries: %d", w.Len())
	}
	names := w.QueryNames()
	if names[0] != "q1" || names[1] != "q2" {
		t.Errorf("names: %v", names)
	}
}

func TestLoadQueriesDirErrors(t *testing.T) {
	if _, err := LoadQueriesDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing dir accepted")
	}
	empty := t.TempDir()
	if _, err := LoadQueriesDir(empty); err == nil {
		t.Error("empty dir accepted")
	}
	bad := t.TempDir()
	writeFile(t, filepath.Join(bad, "broken.sql"), "DROP TABLE x")
	if _, err := LoadQueriesDir(bad); err == nil {
		t.Error("non-SELECT SQL accepted")
	}
}

func TestSaveLoadSchemaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	tables := []Table{{
		Name: "t", Rows: 42,
		Columns:    []Column{{Name: "c", WidthBytes: 4, Distinct: 42}},
		PrimaryKey: []string{"c"},
	}}
	if err := SaveSchema(path, "roundtrip", tables); err != nil {
		t.Fatal(err)
	}
	name, got, err := LoadSchema(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != "roundtrip" || len(got) != 1 || got[0].Rows != 42 {
		t.Errorf("round trip: name=%q tables=%+v", name, got)
	}
}

// End-to-end: load schema + queries from disk and tune.
func TestLoadAndTune(t *testing.T) {
	dir := t.TempDir()
	schemaPath := filepath.Join(dir, "schema.json")
	writeFile(t, schemaPath, testSchemaJSON)
	qdir := filepath.Join(dir, "queries")
	if err := os.Mkdir(qdir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(qdir, "join.sql"),
		"SELECT COUNT(*) FROM sales s, products p WHERE s.s_product = p.p_id")

	name, tables, err := LoadSchema(schemaPath)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(Postgres, name, tables, DefaultHardware)
	if err != nil {
		t.Fatal(err)
	}
	w, err := LoadQueriesDir(qdir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Tune(w, NewSimulatedLLM(1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestSeconds <= 0 {
		t.Errorf("best: %v", res.BestSeconds)
	}
}
