package lambdatune

import (
	"testing"
)

// TestTemperatureZeroIsGreedy is the regression test for the zero-value bug:
// Temperature 0 must reach the LLM as greedy decoding, not be silently
// replaced by the 0.7 default.
func TestTemperatureZeroIsGreedy(t *testing.T) {
	tune := func(temp float64) string {
		db, w, err := Benchmark("tpch-1", Postgres)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.Temperature = temp
		res, err := db.Tune(w, NewSimulatedLLM(7), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.BestScript
	}
	// At temperature 0 the simulated LLM is deterministic per call, so all 5
	// samples collapse to the same script regardless of seed.
	if a, b := tune(0), tune(0); a != b {
		t.Fatalf("temperature 0 not deterministic:\n%s\nvs\n%s", a, b)
	}
	if zero, def := tune(0), tune(0.7); zero == def {
		t.Fatal("temperature 0 produced the 0.7-default result — zero value was dropped")
	}
	if neg, def := tune(-1), tune(0.7); neg != def {
		t.Fatal("negative temperature should inherit the default")
	}
}

// TestTuneWithFaultPlan exercises the public fault-injection path: faults
// fire, the resilient layer absorbs them, and the result is still usable.
func TestTuneWithFaultPlan(t *testing.T) {
	db, w, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Seed = 2 // a seed whose fault stream exercises retries and the breaker
	opts.Faults = &FaultPlan{LLMRate: 0.3, EngineRate: 0.1}
	opts.Resilience = &ResilienceOptions{}
	res, err := db.Tune(w, NewSimulatedLLM(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScript == "" || res.Speedup() < 1 {
		t.Fatalf("degraded run unusable: speedup=%v", res.Speedup())
	}
	if !res.Faults.Any() {
		t.Fatalf("fault report empty: %+v", res.Faults)
	}
	if res.Faults.QueryAborts == 0 && res.Faults.IndexFailures == 0 &&
		res.Faults.LLMFailures == 0 {
		t.Fatalf("no faults recorded at 30%%/10%%: %+v", res.Faults)
	}
	if res.Faults.String() == "" {
		t.Fatal("String() empty")
	}
}

// TestTuneCleanRunReportsNoFaults: without a fault plan the report stays
// zero-valued.
func TestTuneCleanRunReportsNoFaults(t *testing.T) {
	db, w, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Resilience = &ResilienceOptions{}
	res, err := db.Tune(w, NewSimulatedLLM(1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Any() {
		t.Fatalf("clean run reported faults: %+v", res.Faults)
	}
	if res.Faults.LLMCalls != 5 {
		t.Fatalf("LLMCalls = %d, want 5", res.Faults.LLMCalls)
	}
}
