package lambdatune_test

import (
	"fmt"
	"log"

	"lambdatune"
)

// Tune a built-in benchmark with the simulated LLM and print headline
// numbers. With a fixed seed the run is fully deterministic.
func Example() {
	db, w, err := lambdatune.Benchmark("tpch-1", lambdatune.Postgres)
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.Tune(w, lambdatune.NewSimulatedLLM(1), lambdatune.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("candidates: %d\n", res.Candidates)
	fmt.Printf("faster than default: %v\n", res.BestSeconds < res.DefaultSeconds)
	// Output:
	// candidates: 5
	// faster than default: true
}

// Define a custom schema and workload, then tune it.
func ExampleNewDatabase() {
	db, err := lambdatune.NewDatabase(lambdatune.Postgres, "logs", []lambdatune.Table{
		{
			Name: "entries", Rows: 1_000_000,
			Columns: []lambdatune.Column{
				{Name: "id", WidthBytes: 8, Distinct: 1_000_000},
				{Name: "level", WidthBytes: 4, Distinct: 5},
			},
			PrimaryKey: []string{"id"},
		},
	}, lambdatune.DefaultHardware)
	if err != nil {
		log.Fatal(err)
	}
	w, err := lambdatune.ParseWorkload("logs", map[string]string{
		"errors": "SELECT COUNT(*) FROM entries e WHERE e.level = 4",
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.Tune(w, lambdatune.NewSimulatedLLM(1), lambdatune.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.BestSeconds > 0)
	// Output: true
}

// Install a configuration script by hand (the same dialect the LLM emits).
func ExampleDatabase_ApplyScript() {
	db, w, err := lambdatune.Benchmark("tpch-1", lambdatune.Postgres)
	if err != nil {
		log.Fatal(err)
	}
	before := db.WorkloadSeconds(w)
	err = db.ApplyScript("ALTER SYSTEM SET shared_buffers = '15GB';\n" +
		"CREATE INDEX i ON lineitem (l_orderkey);")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(db.WorkloadSeconds(w) < before)
	// Output: true
}

// Augment any client with retrieval over a custom document corpus.
func ExampleWithRetrieval() {
	client := lambdatune.WithRetrieval(lambdatune.NewSimulatedLLM(1), []lambdatune.Document{
		{Title: "runbook", Text: "On our PostgreSQL hosts set effective_io_concurrency to 200."},
	})
	fmt.Println(client.Name())
	// Output: sim-gpt4+rag
}
