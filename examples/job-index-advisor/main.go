// Index advisor: use λ-Tune purely for physical design on the Join Order
// Benchmark — tune, extract the index recommendations from the winning
// configuration, and measure their isolated effect (the setting of the
// paper's Figure 8).
package main

import (
	"fmt"
	"log"
	"strings"

	"lambdatune"
)

func main() {
	db, w, err := lambdatune.Benchmark("job", lambdatune.Postgres)
	if err != nil {
		log.Fatal(err)
	}
	baseline := db.WorkloadSeconds(w)

	res, err := db.Tune(w, lambdatune.NewSimulatedLLM(1), lambdatune.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("λ-Tune recommends %d indexes for JOB (113 queries over IMDB):\n", len(res.Indexes()))
	for _, ix := range res.Indexes() {
		fmt.Println("  CREATE INDEX ON", ix)
	}

	// Isolate the physical-design effect: fresh instance, default
	// parameters except planner hints to use indexes, only the recommended
	// indexes installed.
	db2, _, err := lambdatune.Benchmark("job", lambdatune.Postgres)
	if err != nil {
		log.Fatal(err)
	}
	var script strings.Builder
	script.WriteString("ALTER SYSTEM SET random_page_cost = 1.1;\n")
	for _, ix := range res.Indexes() {
		// ix is "table(column)".
		open := strings.IndexByte(ix, '(')
		table := ix[:open]
		column := strings.TrimSuffix(ix[open+1:], ")")
		fmt.Fprintf(&script, "CREATE INDEX ON %s (%s);\n", table, column)
	}
	if err := db2.ApplyScript(script.String()); err != nil {
		log.Fatal(err)
	}
	withIndexes := db2.WorkloadSeconds(w)

	fmt.Printf("\nJOB workload: %.1fs without indexes → %.1fs with λ-Tune's indexes (%.1fx)\n",
		baseline, withIndexes, baseline/withIndexes)
}
