// TPC-H deep dive: tune both DBMS flavors, apply the winning configuration,
// and report per-query before/after times — the analysis behind the paper's
// Table 5 and Figure 5.
package main

import (
	"fmt"
	"log"
	"sort"

	"lambdatune"
)

func main() {
	for _, flavor := range []struct {
		name string
		dbms lambdatune.DBMS
	}{
		{"PostgreSQL", lambdatune.Postgres},
		{"MySQL", lambdatune.MySQL},
	} {
		db, w, err := lambdatune.Benchmark("tpch-1", flavor.dbms)
		if err != nil {
			log.Fatal(err)
		}
		before := db.QuerySeconds(w)

		res, err := db.Tune(w, lambdatune.NewSimulatedLLM(1), lambdatune.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		if err := db.Apply(res); err != nil {
			log.Fatal(err)
		}
		after := db.QuerySeconds(w)

		fmt.Printf("== %s ==\n", flavor.name)
		fmt.Printf("parameters changed: %d, indexes created: %d\n",
			len(res.Parameters()), len(res.Indexes()))
		names := w.QueryNames()
		sort.Strings(names)
		fmt.Printf("%-6s %10s %10s %8s\n", "query", "before(s)", "after(s)", "speedup")
		for _, n := range names {
			fmt.Printf("%-6s %10.2f %10.2f %7.1fx\n", n, before[n], after[n], before[n]/after[n])
		}
		fmt.Printf("total: %.1fs → %.1fs (%.1fx)\n\n",
			res.DefaultSeconds, res.BestSeconds, res.Speedup())
	}
}
