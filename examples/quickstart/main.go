// Quickstart: tune TPC-H on the simulated PostgreSQL with five LLM samples
// and print the winning configuration — the whole λ-Tune pipeline in a dozen
// lines.
package main

import (
	"fmt"
	"log"

	"lambdatune"
)

func main() {
	db, w, err := lambdatune.Benchmark("tpch-1", lambdatune.Postgres)
	if err != nil {
		log.Fatal(err)
	}

	res, err := db.Tune(w, lambdatune.NewSimulatedLLM(1), lambdatune.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Winning configuration:")
	fmt.Println(res.BestScript)
	fmt.Printf("%s: %.1fs → %.1fs (%.1fx speedup), tuned in %.1fs simulated\n",
		w.Name(), res.DefaultSeconds, res.BestSeconds, res.Speedup(), res.TuningSeconds)
}
