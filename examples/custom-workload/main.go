// Custom workload: tune a user-defined schema and query set — the path a
// downstream adopter takes for their own database. Define table statistics,
// hand over the SQL, and plug in any LLM via the Client interface (here the
// bundled simulator).
package main

import (
	"fmt"
	"log"

	"lambdatune"
)

func main() {
	db, err := lambdatune.NewDatabase(lambdatune.Postgres, "telemetry", []lambdatune.Table{
		{
			Name: "events", Rows: 40_000_000,
			Columns: []lambdatune.Column{
				{Name: "e_id", WidthBytes: 8, Distinct: 40_000_000},
				{Name: "e_device", WidthBytes: 8, Distinct: 500_000},
				{Name: "e_kind", WidthBytes: 4, Distinct: 40},
				{Name: "e_ts", WidthBytes: 8, Distinct: 3_000_000},
				{Name: "e_value", WidthBytes: 8, Distinct: 1_000_000},
			},
			PrimaryKey:  []string{"e_id"},
			ForeignKeys: []string{"e_device"},
		},
		{
			Name: "devices", Rows: 500_000,
			Columns: []lambdatune.Column{
				{Name: "d_id", WidthBytes: 8, Distinct: 500_000},
				{Name: "d_model", WidthBytes: 16, Distinct: 120},
				{Name: "d_region", WidthBytes: 8, Distinct: 30},
			},
			PrimaryKey: []string{"d_id"},
		},
		{
			Name: "regions", Rows: 30,
			Columns: []lambdatune.Column{
				{Name: "r_id", WidthBytes: 8, Distinct: 30},
				{Name: "r_name", WidthBytes: 16, Distinct: 30},
			},
			PrimaryKey: []string{"r_id"},
		},
	}, lambdatune.Hardware{Cores: 16, MemoryGB: 128})
	if err != nil {
		log.Fatal(err)
	}

	w, err := lambdatune.ParseWorkload("telemetry", map[string]string{
		"errors-by-model": `SELECT d.d_model, COUNT(*) FROM events e, devices d
			WHERE e.e_device = d.d_id AND e.e_kind = 7
			GROUP BY d.d_model ORDER BY COUNT(*) DESC`,
		"regional-load": `SELECT r.r_name, SUM(e.e_value) FROM events e, devices d, regions r
			WHERE e.e_device = d.d_id AND d.d_region = r.r_id
			GROUP BY r.r_name`,
		"recent-window": `SELECT e.e_kind, AVG(e.e_value) FROM events e
			WHERE e.e_ts BETWEEN 2800000 AND 2900000 GROUP BY e.e_kind`,
		"device-history": `SELECT e.e_ts, e.e_value FROM events e
			WHERE e.e_device = 4711 ORDER BY e.e_ts`,
	})
	if err != nil {
		log.Fatal(err)
	}

	opts := lambdatune.DefaultOptions()
	opts.TokenBudget = 300 // cap LLM fees for the workload description
	res, err := db.Tune(w, lambdatune.NewSimulatedLLM(3), opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Recommended configuration:")
	fmt.Println(res.BestScript)
	fmt.Printf("workload: %.2fs → %.2fs (%.1fx), prompt: %d tokens\n",
		res.DefaultSeconds, res.BestSeconds, res.Speedup(), res.PromptTokens)
	for _, warn := range res.Warnings {
		fmt.Println("note:", warn)
	}
}
