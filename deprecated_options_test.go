package lambdatune

// The deprecated-field gate: the flat Options aliases (InitialTimeout,
// Alpha, Parallelism, Trace, Metrics, Progress, CheckpointDir, Resume) exist
// only so configurations written against the pre-grouping API keep working.
// New code must use the grouped fields (Options.Evaluation, .Durability,
// .Observability). This test parses every Go file in the trees that consume
// the public API and fails when one touches a flat alias on an
// Options-typed value — a vet-style check without a build dependency.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// deprecatedOptionFields are the flat aliases; each has a grouped home.
var deprecatedOptionFields = map[string]string{
	"InitialTimeout": "Evaluation.InitialTimeout",
	"Alpha":          "Evaluation.Alpha",
	"Parallelism":    "Evaluation.Parallelism",
	"Trace":          "Observability.Trace",
	"Metrics":        "Observability.Metrics",
	"Progress":       "Observability.Progress",
	"CheckpointDir":  "Durability.CheckpointDir",
	"Resume":         "Durability.Resume",
}

// deprecatedGateAllowlist names the files that touch the aliases on purpose:
// their definition, their reconciliation tests, and this gate.
var deprecatedGateAllowlist = map[string]bool{
	"options.go":                 true,
	"options_test.go":            true,
	"deprecated_options_test.go": true,
}

func TestNoNewDeprecatedOptionsFieldUses(t *testing.T) {
	// The trees that build against the public Options type. internal/core
	// and friends use their own option structs (tuner.Options has a Trace
	// field too) and are deliberately out of scope.
	files := []string{}
	root, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, root...)
	for _, dir := range []string{"cmd", "examples", filepath.Join("internal", "service")} {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	fset := token.NewFileSet()
	for _, path := range files {
		if deprecatedGateAllowlist[filepath.Base(path)] {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, use := range deprecatedUses(f) {
			pos := fset.Position(use.pos)
			t.Errorf("%s:%d: deprecated flat field Options.%s — set Options.%s instead",
				pos.Filename, pos.Line, use.field, deprecatedOptionFields[use.field])
		}
	}
}

// TestDeprecatedGateCatches proves the gate detects every tracked shape —
// otherwise a silent heuristic regression would let flat-field uses back in.
func TestDeprecatedGateCatches(t *testing.T) {
	src := `package p

func fromDefault() {
	opts := DefaultOptions()
	opts.Parallelism = 4 // flagged
}

func fromQualifiedDefault() {
	opts := lambdatune.DefaultOptions()
	opts.CheckpointDir = "/tmp" // flagged
}

func fromLiteral() {
	o := Options{InitialTimeout: 7} // key flagged
	_ = o.Alpha                     // read flagged
}

func fromParam(opts lambdatune.Options) {
	opts.Resume = true // flagged
}

func fromVar() {
	var o Options
	o.Trace = nil // flagged
}

func groupedIsFine() {
	opts := DefaultOptions()
	opts.Evaluation.Parallelism = 4
	opts.Durability.CheckpointDir = "/tmp"
	opts.Observability.Progress = nil
}

func unrelatedIsFine(x Other) {
	x.Trace = nil // not Options-typed: ignored
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "gate_probe.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, u := range deprecatedUses(f) {
		got = append(got, u.field)
	}
	want := []string{"InitialTimeout", "Parallelism", "CheckpointDir", "Alpha", "Resume", "Trace"}
	if len(got) != len(want) {
		t.Fatalf("gate flagged %v, want the six probes %v", got, want)
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			found = found || g == w
		}
		if !found {
			t.Errorf("gate missed a %s probe (flagged %v)", w, got)
		}
	}
}

type deprecatedUse struct {
	field string
	pos   token.Pos
}

// isOptionsType reports whether a type expression names the public Options
// struct: `Options`, `lambdatune.Options`, or a pointer to either. The bare
// name is checked exactly, so EvaluationOptions/RacingOptions do not match.
func isOptionsType(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.StarExpr:
		return isOptionsType(e.X)
	case *ast.Ident:
		return e.Name == "Options"
	case *ast.SelectorExpr:
		return e.Sel.Name == "Options"
	}
	return false
}

// optionsValue reports whether an expression evidently produces an Options
// value: a DefaultOptions() call or an Options composite literal.
func optionsValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		switch fn := e.Fun.(type) {
		case *ast.Ident:
			return fn.Name == "DefaultOptions"
		case *ast.SelectorExpr:
			return fn.Sel.Name == "DefaultOptions"
		}
	case *ast.CompositeLit:
		return e.Type != nil && isOptionsType(e.Type)
	case *ast.UnaryExpr:
		return e.Op.String() == "&" && optionsValue(e.X)
	}
	return false
}

// deprecatedUses walks one file and returns every flat-alias touch: a
// deprecated key in an Options composite literal, or a selector on an
// identifier that is evidently Options-typed (declared as Options, assigned
// from DefaultOptions()/Options{…}, or an Options parameter/receiver).
// It is a heuristic, not a type checker: identifiers are tracked per file
// without scope analysis, which is exact enough for these trees.
func deprecatedUses(f *ast.File) []deprecatedUse {
	tracked := map[string]bool{}
	track := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			tracked[id.Name] = true
		}
	}

	// Pass 1: find Options-typed identifiers.
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) && optionsValue(rhs) {
					track(n.Lhs[i])
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil && isOptionsType(n.Type) {
				for _, name := range n.Names {
					track(name)
				}
			}
			for i, v := range n.Values {
				if i < len(n.Names) && optionsValue(v) {
					track(n.Names[i])
				}
			}
		case *ast.FuncDecl:
			fields := []*ast.FieldList{n.Type.Params, n.Recv}
			for _, fl := range fields {
				if fl == nil {
					continue
				}
				for _, p := range fl.List {
					if isOptionsType(p.Type) {
						for _, name := range p.Names {
							track(name)
						}
					}
				}
			}
		}
		return true
	})

	// Pass 2: flag deprecated touches.
	var uses []deprecatedUse
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if n.Type == nil || !isOptionsType(n.Type) {
				return true
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok {
					if _, dep := deprecatedOptionFields[key.Name]; dep {
						uses = append(uses, deprecatedUse{key.Name, key.Pos()})
					}
				}
			}
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok || !tracked[id.Name] {
				return true
			}
			if _, dep := deprecatedOptionFields[n.Sel.Name]; dep {
				uses = append(uses, deprecatedUse{n.Sel.Name, n.Sel.Pos()})
			}
		}
		return true
	})
	return uses
}
