package lambdatune

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"lambdatune/internal/backend"
	"lambdatune/internal/core/evaluator"
	"lambdatune/internal/core/tuner"
	"lambdatune/internal/engine"
	"lambdatune/internal/faults"
	"lambdatune/internal/llm"
	"lambdatune/internal/obs"
	"lambdatune/internal/runstate"
	"lambdatune/internal/workload"
)

// RuntimeOptions configures a shared Runtime (see NewRuntime). The zero
// value is valid and yields a runtime whose runs behave exactly like
// standalone Tune calls: no admission gate, no tenant breakers — only the
// cross-job memo reuse, which changes host CPU time and never outcomes.
type RuntimeOptions struct {
	// EvalSlots bounds how many evaluation workers execute concurrently
	// across every job on the runtime (0 = unbounded). The gate is
	// wall-clock only: each job keeps its logical Parallelism and its
	// virtual-clock accounting, so per-job results are identical at any
	// slot count. Leases are granted fairly, round-robin across jobs.
	EvalSlots int

	// TenantBreakerThreshold is the number of consecutive failed LLM calls
	// that trips one tenant's circuit breaker on the shared transport
	// (0 = breaker off). Breaker state is isolated per Options.Tenant.
	TenantBreakerThreshold int
	// TenantBreakerCooldown is how long a tripped breaker stays open, on
	// the wall clock (tenants' virtual clocks are mutually incomparable).
	// Defaults to 30s when the breaker is enabled.
	TenantBreakerCooldown time.Duration
	// TenantMaxInFlight bounds one tenant's concurrent LLM calls
	// (0 = unbounded).
	TenantMaxInFlight int

	// Metrics, when set, receives the runtime_* series: pool lease waits,
	// per-namespace memo hits/misses/cross-job hits, per-tenant breaker
	// state. The same registry can back a /metrics endpoint (lambdatuned
	// mounts it).
	Metrics *Metrics
}

// Runtime owns the per-process resources that standalone Tune calls build
// per run: the evaluation admission gate, the per-tenant LLM gateway, warm
// benchmark templates (schema + plan cache), and cross-job schedule/relevance
// memos. Jobs borrow from it via Runtime.Benchmark + Runtime.TuneContext and
// tenants tuning similar schemas hit warm state instead of recomputing it.
//
// Determinism contract: everything the Runtime shares is either provably
// host-CPU-only (plan caches, schedule memos, relevance maps — pure
// functions of their keys) or wall-clock-only (evaluation slots, breaker
// cooldowns). A job's virtual-clock outcome — selection, scripts, tuning
// seconds — is byte-identical to the same job run standalone, at any
// parallelism, slot count, and co-tenancy.
//
// Isolation contract: memo namespaces are keyed by (DBMS flavor, catalog
// fingerprint, workload digest), so jobs share memo state only when their
// simulated plans are interchangeable by construction; LLM breaker state and
// in-flight bounds are keyed by Options.Tenant and never cross tenants.
//
// A Runtime is safe for concurrent use. Close only marks it unusable for
// new work; in-flight jobs finish normally.
type Runtime struct {
	opts    RuntimeOptions
	reg     *obs.Registry // nil when Metrics unset
	slots   *evaluator.SharedSlots
	gateway *llm.TenantGateway

	mu         sync.Mutex
	closed     bool
	jobSeq     int
	templates  map[templateKey]*benchTemplate
	namespaces map[namespaceKey]*evaluator.Memo
}

// templateKey identifies a warm benchmark template.
type templateKey struct {
	benchmark string
	flavor    engine.Flavor
}

// benchTemplate is one warm built-in benchmark: a primary backend whose plan
// cache accumulates across jobs (jobs run on snapshots of it) and the
// canonical interned workload, so every job on the template shares query
// pointers and therefore memo entries.
type benchTemplate struct {
	db backend.Backend
	w  *Workload
}

// namespaceKey scopes one cross-job memo: jobs share entries only when
// flavor, schema (catalog fingerprint), and workload (digest over names and
// SQL) all match — the preconditions under which schedule orderings and
// relevance maps are interchangeable across jobs.
type namespaceKey struct {
	flavor   engine.Flavor
	catalog  string
	workload string
}

// RuntimeStats is a point-in-time snapshot of a Runtime's shared-state
// telemetry, aggregated over all namespaces.
type RuntimeStats struct {
	// Jobs counts runs started on the runtime.
	Jobs int
	// Namespaces counts distinct memo namespaces materialized so far.
	Namespaces int
	// MemoLookups / MemoHits / MemoCrossJobHits aggregate the namespace
	// memos' probe accounting (relevance + DP-ordering layers). A cross-job
	// hit is a hit on an entry computed by a different job.
	MemoLookups      uint64
	MemoHits         uint64
	MemoCrossJobHits uint64
}

// CrossJobHitRate returns MemoCrossJobHits / MemoLookups (0 when idle).
func (s RuntimeStats) CrossJobHitRate() float64 {
	if s.MemoLookups == 0 {
		return 0
	}
	return float64(s.MemoCrossJobHits) / float64(s.MemoLookups)
}

// NewRuntime builds a shared runtime. RuntimeOptions{} is valid (see its
// doc); Close the runtime when done with it.
func NewRuntime(ro RuntimeOptions) *Runtime {
	rt := &Runtime{
		opts:       ro,
		templates:  make(map[templateKey]*benchTemplate),
		namespaces: make(map[namespaceKey]*evaluator.Memo),
	}
	if ro.Metrics != nil {
		rt.reg = ro.Metrics.reg
	}
	rt.slots = evaluator.NewSharedSlots(ro.EvalSlots, rt.reg)
	rt.gateway = llm.NewTenantGateway(llm.TenantGatewayOptions{
		BreakerThreshold: ro.TenantBreakerThreshold,
		BreakerCooldown:  ro.TenantBreakerCooldown,
		MaxInFlight:      ro.TenantMaxInFlight,
		Registry:         rt.reg,
	})
	return rt
}

// Close marks the runtime unusable for new jobs. In-flight jobs finish
// normally; shared memo state is released to the collector with the runtime.
func (rt *Runtime) Close() error {
	rt.mu.Lock()
	rt.closed = true
	rt.mu.Unlock()
	return nil
}

// Stats returns the runtime's current shared-state telemetry.
func (rt *Runtime) Stats() RuntimeStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st := RuntimeStats{Jobs: rt.jobSeq, Namespaces: len(rt.namespaces)}
	for _, m := range rt.namespaces {
		ms := m.Stats()
		st.MemoLookups += ms.Lookups
		st.MemoHits += ms.Hits
		st.MemoCrossJobHits += ms.CrossJobHits
	}
	return st
}

// Benchmark returns a database and workload for one of the built-in
// benchmarks, like the package-level Benchmark — but backed by the runtime's
// warm template: the database is a snapshot sharing the template's catalog
// and plan cache (host-CPU savings only), and the workload is the canonical
// interned instance, so all jobs on this (benchmark, dbms) pair share query
// pointers and memo entries.
func (rt *Runtime) Benchmark(name string, dbms DBMS) (*Database, *Workload, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return nil, nil, ErrRuntimeClosed
	}
	key := templateKey{benchmark: strings.ToLower(name), flavor: engine.Flavor(dbms)}
	tm := rt.templates[key]
	if tm == nil {
		wl, err := workload.ByName(name)
		if err != nil {
			return nil, nil, err
		}
		db, err := backend.Open("sim", backend.Spec{
			Flavor: engine.Flavor(dbms), Catalog: wl.Catalog, Hardware: engine.DefaultHardware,
		})
		if err != nil {
			return nil, nil, err
		}
		tm = &benchTemplate{db: db, w: &Workload{name: wl.Name, queries: wl.Queries}}
		rt.templates[key] = tm
	}
	jdb := tm.db
	if sn, ok := tm.db.(backend.Snapshotter); ok {
		jdb = sn.Snapshot()
	}
	return &Database{db: jdb, rt: rt, tkey: key}, tm.w, nil
}

// Tune is TuneContext with context.Background().
func (rt *Runtime) Tune(d *Database, w *Workload, client Client, opts Options) (*Result, error) {
	return rt.TuneContext(context.Background(), d, w, client, opts)
}

// TuneContext runs the λ-Tune pipeline for one job on the shared runtime.
// It is Database.TuneContext with the runtime's resources injected: the
// job's evaluators lease from the shared admission gate, its LLM calls pass
// through opts.Tenant's breaker scope, and its schedule/relevance memos live
// in the namespace keyed by (flavor, catalog fingerprint, workload digest).
// Per-job results are byte-identical to a standalone run; only host wall
// time changes. See Database.TuneContext for semantics and errors.
func (rt *Runtime) TuneContext(ctx context.Context, d *Database, w *Workload, client Client, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	// Validate succeeded, so normalization cannot fail; from here on the
	// grouped fields are authoritative and the flat aliases are zeroed.
	opts, _ = opts.normalized()
	if w == nil || len(w.queries) == 0 {
		return nil, ErrEmptyWorkload
	}
	if client == nil {
		return nil, fmt.Errorf("%w: nil Client", ErrInvalidOptions)
	}
	jobID, memo, err := rt.admit(d, w, opts)
	if err != nil {
		return nil, err
	}
	defaultSeconds := d.db.WorkloadSeconds(w.queries)
	topts := opts.toTuner()
	topts.SharedMemo = memo
	topts.Slots = rt.slots
	topts.JobID = jobID
	var (
		store    *runstate.Store
		fellBack bool
	)
	if opts.Durability.CheckpointDir != "" {
		store = runstate.NewStore(opts.Durability.CheckpointDir, RunID(w.name, opts.Seed))
		topts.Checkpoint = store
		if opts.Durability.Resume {
			st, fb, lerr := store.Load()
			if lerr != nil {
				return nil, fmt.Errorf("lambdatune: resume: %w", lerr)
			}
			fellBack = fb
			topts.Resume = st
		}
	}
	if opts.Observability.Metrics != nil {
		// Instrumented databases feed the backend_* surface series and plan
		// cache gauges into the run's registry.
		if am, ok := d.db.(interface{ AttachMetrics(*obs.Registry) }); ok {
			am.AttachMetrics(opts.Observability.Metrics.reg)
		}
	}
	var inner llm.Client = client
	if opts.Faults != nil {
		decorate, cleanup, ferr := wireFaults(d, opts, topts.Trace, topts.Resume, store, &inner)
		if ferr != nil {
			return nil, ferr
		}
		topts.DecorateState = decorate
		defer cleanup()
	}
	if rt.gateway.Enabled() {
		// Tenant scoping sits above the fault interceptor (injected faults
		// count against the tenant's breaker) and below the per-job
		// resilience layer the tuner adds (a breaker-open rejection is
		// non-retryable there, failing the sample immediately).
		inner = rt.gateway.Client(opts.Tenant, inner)
	}
	tn := tuner.New(d.db, inner, topts)
	res, err := tn.Tune(ctx, w.queries)
	if err != nil {
		return nil, err
	}
	rt.adoptPlans(d)
	out := &Result{
		BestSeconds:        res.BestTime,
		DefaultSeconds:     defaultSeconds,
		TuningSeconds:      res.TuningSeconds,
		EvalWallSeconds:    res.EvalWallSeconds,
		PromptTokens:       res.Prompt.TotalTokens,
		Candidates:         len(res.Candidates),
		Warnings:           res.Warnings,
		Faults:             FaultReport(res.Faults),
		Telemetry:          toTelemetry(res.Telemetry),
		Resumed:            opts.Durability.Resume,
		CheckpointFellBack: fellBack,
		best:               res.Best,
	}
	if res.Best != nil {
		out.BestScript = res.Best.Script(d.db.Flavor())
	}
	for _, ev := range res.Progress {
		out.Progress = append(out.Progress, ProgressPoint{TuningSeconds: ev.Clock, BestSeconds: ev.BestTime})
	}
	return out, nil
}

// admit registers one job: it allocates the job ID and resolves the job's
// memo namespace from the database's flavor, its catalog fingerprint, and
// the workload digest.
func (rt *Runtime) admit(d *Database, w *Workload, opts Options) (string, *evaluator.Memo, error) {
	nsKey := namespaceKey{
		flavor:   d.db.Flavor(),
		catalog:  d.db.Catalog().Fingerprint(),
		workload: runstate.WorkloadDigest(w.name, w.queries),
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return "", nil, ErrRuntimeClosed
	}
	rt.jobSeq++
	tenant := opts.Tenant
	if tenant == "" {
		tenant = "default"
	}
	jobID := fmt.Sprintf("%s#%d", tenant, rt.jobSeq)
	memo := rt.namespaces[nsKey]
	if memo == nil {
		ns := fmt.Sprintf("%s_%s_%s", strings.ToLower(nsKey.flavor.String()),
			nsKey.catalog[:8], nsKey.workload[:8])
		memo = evaluator.NewSharedMemo(ns, rt.reg)
		rt.namespaces[nsKey] = memo
		if rt.reg != nil {
			rt.reg.Gauge("runtime_memo_namespaces").Set(float64(len(rt.namespaces)))
		}
	}
	if rt.reg != nil {
		rt.reg.Counter("runtime_jobs_total").Inc()
	}
	return jobID, memo, nil
}

// adoptPlans folds a finished job's plan-cache write layer back into the
// warm template it was snapshotted from, so later jobs on the same template
// start with those plans already cached. Content-addressed, deterministic
// plans merge in any order; the fold is host-CPU-only by the same argument
// as the plan cache itself. A no-op for databases not born from a template
// of this runtime (or wrapped since, e.g. by Instrument).
func (rt *Runtime) adoptPlans(d *Database) {
	if d.rt != rt {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	tm := rt.templates[d.tkey]
	if tm == nil {
		return
	}
	if sn, ok := tm.db.(backend.Snapshotter); ok {
		sn.AbsorbSnapshot(d.db)
	}
}

// wireFaults installs the fault injector and chaos kill points for one run —
// extracted from the pre-Runtime TuneContext body verbatim. It wraps *inner
// with the LLM fault interceptor and returns the checkpoint decorator that
// stamps the injector's RNG position, plus the cleanup that detaches the
// injector from the backend. tr is the run's tracer and resume its loaded
// checkpoint state (both may be nil).
func wireFaults(d *Database, opts Options, tr *obs.Tracer, resume *runstate.State, store *runstate.Store, inner *llm.Client) (func(*runstate.State), func(), error) {
	fi, ok := d.db.(backend.FaultInjectable)
	if !ok {
		return nil, nil, fmt.Errorf("%w: Faults require a fault-injectable backend, %T is not", ErrInvalidOptions, d.db)
	}
	seed := opts.Faults.Seed
	if seed == 0 {
		seed = opts.Seed
	}
	plan := faults.NewPlan(opts.Faults.LLMRate, opts.Faults.EngineRate)
	inj := faults.NewInjector(plan, seed, d.db.Clock())
	inj.SetTracer(tr)
	fi.SetFaultInjector(inj)
	// The injector wraps the raw client, so the resilience layer (added
	// by the tuner on top) sees the injected faults as transport errors.
	*inner = llm.WithInterceptor(*inner, inj)
	if resume != nil && resume.Injector != nil {
		if resume.Injector.Seed != seed {
			fi.SetFaultInjector(nil)
			return nil, nil, fmt.Errorf("%w: fault seed %d differs from checkpoint's %d",
				runstate.ErrCheckpointMismatch, seed, resume.Injector.Seed)
		}
		inj.RestoreEngine(resume.Injector.EngineDraws, resume.Injector.Counts)
	}
	// Chaos kill points: simulate a crash right after a durable
	// checkpoint — the bytes are on disk, the process "dies".
	if k := (&faults.Killer{AfterRound: opts.Faults.CrashAfterRound,
		AfterSaves: opts.Faults.CrashAfterSaves}); k.Armed() {
		store.AfterSave = func(st *runstate.State) error {
			round := 0
			if st.Round != nil {
				round = st.Round.Round
			}
			return k.AfterCheckpoint(round)
		}
	}
	// Every checkpoint carries the injector's RNG position, and a resumed
	// run fast-forwards a fresh injector there — so the fault sequence
	// after the crash matches the uninterrupted run's.
	decorate := func(st *runstate.State) {
		s, draws, counts := inj.Snapshot()
		st.Injector = &runstate.InjectorState{Seed: s, EngineDraws: draws, Counts: counts}
	}
	return decorate, func() { fi.SetFaultInjector(nil) }, nil
}
