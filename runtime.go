package lambdatune

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"lambdatune/internal/backend"
	"lambdatune/internal/core/evaluator"
	"lambdatune/internal/core/prompt"
	"lambdatune/internal/core/tuner"
	"lambdatune/internal/engine"
	"lambdatune/internal/faults"
	"lambdatune/internal/llm"
	"lambdatune/internal/obs"
	"lambdatune/internal/runstate"
	"lambdatune/internal/workload"
)

// RuntimeOptions configures a shared Runtime (see NewRuntime). The zero
// value is valid and yields a runtime whose runs behave exactly like
// standalone Tune calls: no admission gate, no tenant breakers — only the
// cross-job memo reuse, which changes host CPU time and never outcomes.
type RuntimeOptions struct {
	// EvalSlots bounds how many evaluation workers execute concurrently
	// across every job on the runtime (0 = unbounded). The gate is
	// wall-clock only: each job keeps its logical Parallelism and its
	// virtual-clock accounting, so per-job results are identical at any
	// slot count. Leases are granted by weighted fair share: deficit
	// round-robin across tenants (see TenantWeights), round-robin across a
	// tenant's jobs.
	EvalSlots int

	// TenantWeights assigns per-tenant fair-share weights on the evaluation
	// slot gate: while backlogged, a tenant receives slots in proportion to
	// its weight. Unlisted tenants (and weights < 1) count as weight 1, so
	// no assignment can starve anyone. Nil means every tenant weighs 1 —
	// equal shares.
	TenantWeights map[string]int

	// MemoCapacity bounds each namespace's schedule-order memo to this many
	// entries (0 = the built-in default, 4096). The segmented-LRU lifecycle
	// evicts cold entries individually once the bound is hit; sizing it below
	// the cross-job working set trades recompute for memory, never
	// correctness. The E16 job-throughput study sizes it down deliberately to
	// measure the lifecycles under overflow.
	MemoCapacity int

	// LegacyMemoLifecycle reverts every shared cache to its pre-fair-share
	// lifecycle: clear-on-overflow schedule/relevance memos, drop-oldest
	// plan-cache layers, and per-admission namespace digests. Simulated
	// results are identical either way — the switch exists as the measurable
	// baseline for the E16 job-throughput study and costs throughput under
	// churn; production runtimes should leave it false.
	LegacyMemoLifecycle bool

	// TenantBreakerThreshold is the number of consecutive failed LLM calls
	// that trips one tenant's circuit breaker on the shared transport
	// (0 = breaker off). Breaker state is isolated per Options.Tenant.
	TenantBreakerThreshold int
	// TenantBreakerCooldown is how long a tripped breaker stays open, on
	// the wall clock (tenants' virtual clocks are mutually incomparable).
	// Defaults to 30s when the breaker is enabled.
	TenantBreakerCooldown time.Duration
	// TenantMaxInFlight bounds one tenant's concurrent LLM calls
	// (0 = unbounded).
	TenantMaxInFlight int

	// Metrics, when set, receives the runtime_* series: pool lease waits,
	// per-namespace memo hits/misses/cross-job hits, per-tenant breaker
	// state. The same registry can back a /metrics endpoint (lambdatuned
	// mounts it).
	Metrics *Metrics

	// Logger, when set, receives the runtime's structured operational log:
	// slot grants on the evaluation gate (Debug) and tenant breaker
	// transitions (Info/Warn). Purely observational — logging changes no
	// outcome. Nil discards.
	Logger *slog.Logger
}

// Runtime owns the per-process resources that standalone Tune calls build
// per run: the evaluation admission gate, the per-tenant LLM gateway, warm
// benchmark templates (schema + plan cache), and cross-job schedule/relevance
// memos. Jobs borrow from it via Runtime.Benchmark + Runtime.TuneContext and
// tenants tuning similar schemas hit warm state instead of recomputing it.
//
// Determinism contract: everything the Runtime shares is either provably
// host-CPU-only (plan caches, schedule memos, relevance maps — pure
// functions of their keys) or wall-clock-only (evaluation slots, breaker
// cooldowns). A job's virtual-clock outcome — selection, scripts, tuning
// seconds — is byte-identical to the same job run standalone, at any
// parallelism, slot count, and co-tenancy.
//
// Isolation contract: memo namespaces are keyed by (DBMS flavor, catalog
// fingerprint, workload digest), so jobs share memo state only when their
// simulated plans are interchangeable by construction; LLM breaker state and
// in-flight bounds are keyed by Options.Tenant and never cross tenants.
//
// A Runtime is safe for concurrent use. Close only marks it unusable for
// new work; in-flight jobs finish normally.
type Runtime struct {
	opts    RuntimeOptions
	reg     *obs.Registry // nil when Metrics unset
	slots   *evaluator.SharedSlots
	gateway *llm.TenantGateway

	mu         sync.Mutex
	closed     bool
	jobSeq     int
	templates  map[templateKey]*benchTemplate
	namespaces map[namespaceKey]*evaluator.Memo
}

// templateKey identifies a warm benchmark template.
type templateKey struct {
	benchmark string
	flavor    engine.Flavor
}

// benchTemplate is one warm built-in benchmark: a primary backend whose plan
// cache accumulates across jobs (jobs run on snapshots of it) and the
// canonical interned workload, so every job on the template shares query
// pointers and therefore memo entries. The namespace key components are
// computed once here — both are SHA-256 digests over the full catalog and
// workload, and recomputing them per admission was the single largest
// constant cost on the thousand-short-jobs path.
type benchTemplate struct {
	db        backend.Backend
	w         *Workload
	catalogFP string // d.db.Catalog().Fingerprint() of the template backend
	wdigest   string // runstate.WorkloadDigest of the canonical workload
	// defaultOnce guards defaultSecs: the canonical workload's runtime under
	// the template's default (never-tuned) configuration. Every job on this
	// template needs the same number for its Result baseline, so it is
	// computed once here instead of per admission. Safe because the template
	// backend itself is never tuned — jobs mutate snapshots — and plan-cache
	// absorption cannot change deterministic query times.
	defaultOnce sync.Once
	defaultSecs float64
	// prompts caches generated tuning prompts per prompt.Options value.
	// Generation is a pure function of (default configuration, workload,
	// hardware, options) — the LLM seed plays no part — so every job on the
	// template shares one prompt per options value instead of re-running
	// snippet valuation and compression per admission.
	promptMu sync.Mutex
	prompts  map[prompt.Options]*prompt.Result
}

// tenantOfJobID maps a runtime job ID ("tenant#seq") back to its tenant —
// the fairness key of the evaluation slot gate. The sequence suffix is
// stripped at the last '#' so tenant names containing '#' stay intact.
func tenantOfJobID(job string) string {
	if i := strings.LastIndexByte(job, '#'); i >= 0 {
		return job[:i]
	}
	return job
}

// namespaceKey scopes one cross-job memo: jobs share entries only when
// flavor, schema (catalog fingerprint), and workload (digest over names and
// SQL) all match — the preconditions under which schedule orderings and
// relevance maps are interchangeable across jobs.
type namespaceKey struct {
	flavor   engine.Flavor
	catalog  string
	workload string
}

// RuntimeStats is a point-in-time snapshot of a Runtime's shared-state
// telemetry, aggregated over all namespaces.
type RuntimeStats struct {
	// Jobs counts runs started on the runtime.
	Jobs int
	// Namespaces counts distinct memo namespaces materialized so far.
	Namespaces int
	// MemoLookups / MemoHits / MemoCrossJobHits aggregate the namespace
	// memos' probe accounting (relevance + DP-ordering layers). A cross-job
	// hit is a hit on an entry computed by a different job.
	MemoLookups      uint64
	MemoHits         uint64
	MemoCrossJobHits uint64
	// MemoEvictions counts entries the memo lifecycles dropped across all
	// namespaces (segmented-LRU evictions, or flush victims in legacy mode).
	MemoEvictions uint64
	// MemoHitRetention is the fraction of schedule-memo hits served from
	// protected (re-hit) entries — how well the lifecycle keeps the hot set
	// resident. 0 when idle or under the legacy lifecycle.
	MemoHitRetention float64
}

// CrossJobHitRate returns MemoCrossJobHits / MemoLookups (0 when idle).
func (s RuntimeStats) CrossJobHitRate() float64 {
	if s.MemoLookups == 0 {
		return 0
	}
	return float64(s.MemoCrossJobHits) / float64(s.MemoLookups)
}

// NewRuntime builds a shared runtime. RuntimeOptions{} is valid (see its
// doc); Close the runtime when done with it.
func NewRuntime(ro RuntimeOptions) *Runtime {
	rt := &Runtime{
		opts:       ro,
		templates:  make(map[templateKey]*benchTemplate),
		namespaces: make(map[namespaceKey]*evaluator.Memo),
	}
	if ro.Metrics != nil {
		rt.reg = ro.Metrics.reg
	}
	rt.slots = evaluator.NewWeightedSlots(evaluator.SlotsConfig{
		Capacity: ro.EvalSlots,
		Registry: rt.reg,
		Logger:   ro.Logger,
		TenantOf: tenantOfJobID,
		Weight: func(tenant string) int {
			return ro.TenantWeights[tenant]
		},
	})
	rt.gateway = llm.NewTenantGateway(llm.TenantGatewayOptions{
		BreakerThreshold: ro.TenantBreakerThreshold,
		BreakerCooldown:  ro.TenantBreakerCooldown,
		MaxInFlight:      ro.TenantMaxInFlight,
		Registry:         rt.reg,
		Logger:           ro.Logger,
	})
	return rt
}

// Close marks the runtime unusable for new jobs. In-flight jobs finish
// normally; shared memo state is released to the collector with the runtime.
func (rt *Runtime) Close() error {
	rt.mu.Lock()
	rt.closed = true
	rt.mu.Unlock()
	return nil
}

// Stats returns the runtime's current shared-state telemetry.
func (rt *Runtime) Stats() RuntimeStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st := RuntimeStats{Jobs: rt.jobSeq, Namespaces: len(rt.namespaces)}
	var schedHits, schedProtected uint64
	for _, m := range rt.namespaces {
		ms := m.Stats()
		st.MemoLookups += ms.Lookups
		st.MemoHits += ms.Hits
		st.MemoCrossJobHits += ms.CrossJobHits
		st.MemoEvictions += ms.Evictions
		schedHits += ms.ScheduleHits
		schedProtected += ms.ScheduleProtectedHits
	}
	if schedHits > 0 {
		st.MemoHitRetention = float64(schedProtected) / float64(schedHits)
	}
	return st
}

// Benchmark returns a database and workload for one of the built-in
// benchmarks, like the package-level Benchmark — but backed by the runtime's
// warm template: the database is a snapshot sharing the template's catalog
// and plan cache (host-CPU savings only), and the workload is the canonical
// interned instance, so all jobs on this (benchmark, dbms) pair share query
// pointers and memo entries.
func (rt *Runtime) Benchmark(name string, dbms DBMS) (*Database, *Workload, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return nil, nil, ErrRuntimeClosed
	}
	key := templateKey{benchmark: strings.ToLower(name), flavor: engine.Flavor(dbms)}
	tm := rt.templates[key]
	if tm == nil {
		wl, err := workload.ByName(name)
		if err != nil {
			return nil, nil, err
		}
		db, err := backend.Open("sim", backend.Spec{
			Flavor: engine.Flavor(dbms), Catalog: wl.Catalog, Hardware: engine.DefaultHardware,
		})
		if err != nil {
			return nil, nil, err
		}
		if rt.opts.LegacyMemoLifecycle {
			backend.SetPlanCacheLegacyEviction(db, true)
		}
		tm = &benchTemplate{
			db:        db,
			w:         &Workload{name: wl.Name, queries: wl.Queries},
			catalogFP: db.Catalog().Fingerprint(),
			wdigest:   runstate.WorkloadDigest(wl.Name, wl.Queries),
		}
		rt.templates[key] = tm
	}
	jdb := tm.db
	if sn, ok := tm.db.(backend.Snapshotter); ok {
		jdb = sn.Snapshot()
	}
	return &Database{db: jdb, rt: rt, tkey: key, pristine: true}, tm.w, nil
}

// defaultWorkloadSeconds returns the workload's runtime under the default
// configuration for one job, serving the per-template cache when the job's
// database is a still-pristine snapshot of a runtime template and computing
// it on the spot otherwise. Pristine snapshots replay the template's
// deterministic engine state, so the cached number is bit-identical to what
// every such snapshot would produce itself — and the first caller computes
// it on its own snapshot, never on the template database, whose caches
// other jobs may be snapshotting concurrently. LegacyMemoLifecycle
// recomputes per admission — the pre-lifecycle runtime's constant cost,
// kept for A/B measurement.
func (rt *Runtime) defaultWorkloadSeconds(d *Database, w *Workload) float64 {
	if d.rt == rt && d.pristine && !rt.opts.LegacyMemoLifecycle {
		rt.mu.Lock()
		tm := rt.templates[d.tkey]
		rt.mu.Unlock()
		if tm != nil && tm.w == w {
			tm.defaultOnce.Do(func() {
				tm.defaultSecs = d.db.WorkloadSeconds(w.queries)
			})
			return tm.defaultSecs
		}
	}
	return d.db.WorkloadSeconds(w.queries)
}

// sharedPrompt returns the template-cached tuning prompt for this job's
// (workload, prompt options) pair, generating and caching it on first use.
// Nil when the job cannot share one — foreign or already-mutated database,
// legacy lifecycle (which keeps the pre-lifecycle per-job generation cost),
// or a generation error (the per-job path will surface it properly).
// Generation is a pure function of (default configuration, workload,
// hardware, options), so a pristine snapshot yields the template's prompt;
// like defaultWorkloadSeconds, the first caller generates from its own
// snapshot so the shared template database is never touched here.
func (rt *Runtime) sharedPrompt(d *Database, w *Workload, po prompt.Options) *prompt.Result {
	if d.rt != rt || !d.pristine || rt.opts.LegacyMemoLifecycle {
		return nil
	}
	rt.mu.Lock()
	tm := rt.templates[d.tkey]
	rt.mu.Unlock()
	if tm == nil || tm.w != w {
		return nil
	}
	tm.promptMu.Lock()
	defer tm.promptMu.Unlock()
	if pr, ok := tm.prompts[po]; ok {
		return pr
	}
	res, err := prompt.Generate(d.db, w.queries, d.db.Hardware(), po)
	if err != nil {
		return nil
	}
	if tm.prompts == nil {
		tm.prompts = make(map[prompt.Options]*prompt.Result, 2)
	}
	tm.prompts[po] = &res
	return &res
}

// Tune is TuneContext with context.Background().
func (rt *Runtime) Tune(d *Database, w *Workload, client Client, opts Options) (*Result, error) {
	return rt.TuneContext(context.Background(), d, w, client, opts)
}

// TuneContext runs the λ-Tune pipeline for one job on the shared runtime.
// It is Database.TuneContext with the runtime's resources injected: the
// job's evaluators lease from the shared admission gate, its LLM calls pass
// through opts.Tenant's breaker scope, and its schedule/relevance memos live
// in the namespace keyed by (flavor, catalog fingerprint, workload digest).
// Per-job results are byte-identical to a standalone run; only host wall
// time changes. See Database.TuneContext for semantics and errors.
func (rt *Runtime) TuneContext(ctx context.Context, d *Database, w *Workload, client Client, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	// Validate succeeded, so normalization cannot fail; from here on the
	// grouped fields are authoritative and the flat aliases are zeroed.
	opts, _ = opts.normalized()
	if w == nil || len(w.queries) == 0 {
		return nil, ErrEmptyWorkload
	}
	if client == nil {
		return nil, fmt.Errorf("%w: nil Client", ErrInvalidOptions)
	}
	jobID, memo, err := rt.admit(d, w, opts)
	if err != nil {
		return nil, err
	}
	defaultSeconds := rt.defaultWorkloadSeconds(d, w)
	topts := opts.toTuner()
	topts.SharedPrompt = rt.sharedPrompt(d, w, topts.Prompt)
	// Tuning mutates the job database from here on (configs applied, indexes
	// created during evaluation), so its timings stop matching the template.
	d.pristine = false
	topts.SharedMemo = memo
	topts.Slots = rt.slots
	topts.JobID = jobID
	var (
		store    *runstate.Store
		fellBack bool
	)
	if opts.Durability.CheckpointDir != "" {
		store = runstate.NewStore(opts.Durability.CheckpointDir, RunID(w.name, opts.Seed))
		topts.Checkpoint = store
		if opts.Durability.Resume {
			st, fb, lerr := store.Load()
			if lerr != nil {
				return nil, fmt.Errorf("lambdatune: resume: %w", lerr)
			}
			fellBack = fb
			topts.Resume = st
		}
	}
	if opts.Observability.Metrics != nil {
		// Instrumented databases feed the backend_* surface series and plan
		// cache gauges into the run's registry.
		if am, ok := d.db.(interface{ AttachMetrics(*obs.Registry) }); ok {
			am.AttachMetrics(opts.Observability.Metrics.reg)
		}
	}
	var inner llm.Client = client
	if opts.Faults != nil {
		decorate, cleanup, ferr := wireFaults(d, opts, topts.Trace, topts.Resume, store, &inner)
		if ferr != nil {
			return nil, ferr
		}
		topts.DecorateState = decorate
		defer cleanup()
	}
	// Tenant scoping sits above the fault interceptor (injected faults
	// count against the tenant's breaker) and below the per-job
	// resilience layer the tuner adds (a breaker-open rejection is
	// non-retryable there, failing the sample immediately). Client is a
	// no-op when the gateway is inactive, and with enforcement off the
	// wrapper only instruments — it cannot change call outcomes.
	inner = rt.gateway.Client(opts.Tenant, inner)
	tn := tuner.New(d.db, inner, topts)
	res, err := tn.Tune(ctx, w.queries)
	if err != nil {
		return nil, err
	}
	rt.adoptPlans(d)
	out := &Result{
		BestSeconds:        res.BestTime,
		DefaultSeconds:     defaultSeconds,
		TuningSeconds:      res.TuningSeconds,
		EvalWallSeconds:    res.EvalWallSeconds,
		PromptTokens:       res.Prompt.TotalTokens,
		Candidates:         len(res.Candidates),
		Warnings:           res.Warnings,
		Faults:             FaultReport(res.Faults),
		Telemetry:          toTelemetry(res.Telemetry),
		Resumed:            opts.Durability.Resume,
		CheckpointFellBack: fellBack,
		best:               res.Best,
	}
	if res.Best != nil {
		out.BestScript = res.Best.Script(d.db.Flavor())
	}
	for _, ev := range res.Progress {
		out.Progress = append(out.Progress, ProgressPoint{TuningSeconds: ev.Clock, BestSeconds: ev.BestTime})
	}
	return out, nil
}

// admit registers one job: it allocates the job ID and resolves the job's
// memo namespace from the database's flavor, its catalog fingerprint, and
// the workload digest. For databases born from a runtime template with the
// canonical workload — the entire daemon hot path — both digests come from
// the template's cached copies; computing two SHA-256s over the full catalog
// and workload per admission dominated per-job constant cost before.
// (LegacyMemoLifecycle recomputes per admission, preserving the old cost.)
func (rt *Runtime) admit(d *Database, w *Workload, opts Options) (string, *evaluator.Memo, error) {
	var nsKey namespaceKey
	cached := false
	if d.rt == rt && !rt.opts.LegacyMemoLifecycle {
		rt.mu.Lock()
		if tm := rt.templates[d.tkey]; tm != nil && tm.w == w {
			nsKey = namespaceKey{flavor: d.db.Flavor(), catalog: tm.catalogFP, workload: tm.wdigest}
			cached = true
		}
		rt.mu.Unlock()
	}
	if !cached {
		nsKey = namespaceKey{
			flavor:   d.db.Flavor(),
			catalog:  d.db.Catalog().Fingerprint(),
			workload: runstate.WorkloadDigest(w.name, w.queries),
		}
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return "", nil, ErrRuntimeClosed
	}
	rt.jobSeq++
	tenant := opts.Tenant
	if tenant == "" {
		tenant = "default"
	}
	jobID := fmt.Sprintf("%s#%d", tenant, rt.jobSeq)
	memo := rt.namespaces[nsKey]
	if memo == nil {
		ns := fmt.Sprintf("%s_%s_%s", strings.ToLower(nsKey.flavor.String()),
			nsKey.catalog[:8], nsKey.workload[:8])
		if rt.opts.LegacyMemoLifecycle {
			memo = evaluator.NewLegacySharedMemo(ns, rt.reg, rt.opts.MemoCapacity)
		} else {
			memo = evaluator.NewSharedMemo(ns, rt.reg, rt.opts.MemoCapacity)
		}
		rt.namespaces[nsKey] = memo
		if rt.reg != nil {
			rt.reg.Gauge("runtime_memo_namespaces").Set(float64(len(rt.namespaces)))
		}
	}
	if rt.reg != nil {
		rt.reg.Counter("runtime_jobs_total").Inc()
	}
	return jobID, memo, nil
}

// adoptPlans folds a finished job's plan-cache write layer back into the
// warm template it was snapshotted from, so later jobs on the same template
// start with those plans already cached. Content-addressed, deterministic
// plans merge in any order; the fold is host-CPU-only by the same argument
// as the plan cache itself. A no-op for databases not born from a template
// of this runtime (or wrapped since, e.g. by Instrument).
func (rt *Runtime) adoptPlans(d *Database) {
	if d.rt != rt {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	tm := rt.templates[d.tkey]
	if tm == nil {
		return
	}
	if sn, ok := tm.db.(backend.Snapshotter); ok {
		sn.AbsorbSnapshot(d.db)
	}
}

// wireFaults installs the fault injector and chaos kill points for one run —
// extracted from the pre-Runtime TuneContext body verbatim. It wraps *inner
// with the LLM fault interceptor and returns the checkpoint decorator that
// stamps the injector's RNG position, plus the cleanup that detaches the
// injector from the backend. tr is the run's tracer and resume its loaded
// checkpoint state (both may be nil).
func wireFaults(d *Database, opts Options, tr *obs.Tracer, resume *runstate.State, store *runstate.Store, inner *llm.Client) (func(*runstate.State), func(), error) {
	fi, ok := d.db.(backend.FaultInjectable)
	if !ok {
		return nil, nil, fmt.Errorf("%w: Faults require a fault-injectable backend, %T is not", ErrInvalidOptions, d.db)
	}
	seed := opts.Faults.Seed
	if seed == 0 {
		seed = opts.Seed
	}
	plan := faults.NewPlan(opts.Faults.LLMRate, opts.Faults.EngineRate)
	inj := faults.NewInjector(plan, seed, d.db.Clock())
	inj.SetTracer(tr)
	fi.SetFaultInjector(inj)
	// The injector wraps the raw client, so the resilience layer (added
	// by the tuner on top) sees the injected faults as transport errors.
	*inner = llm.WithInterceptor(*inner, inj)
	if resume != nil && resume.Injector != nil {
		if resume.Injector.Seed != seed {
			fi.SetFaultInjector(nil)
			return nil, nil, fmt.Errorf("%w: fault seed %d differs from checkpoint's %d",
				runstate.ErrCheckpointMismatch, seed, resume.Injector.Seed)
		}
		inj.RestoreEngine(resume.Injector.EngineDraws, resume.Injector.Counts)
	}
	// Chaos kill points: simulate a crash right after a durable
	// checkpoint — the bytes are on disk, the process "dies".
	if k := (&faults.Killer{AfterRound: opts.Faults.CrashAfterRound,
		AfterSaves: opts.Faults.CrashAfterSaves}); k.Armed() {
		store.AfterSave = func(st *runstate.State) error {
			round := 0
			if st.Round != nil {
				round = st.Round.Round
			}
			return k.AfterCheckpoint(round)
		}
	}
	// Every checkpoint carries the injector's RNG position, and a resumed
	// run fast-forwards a fresh injector there — so the fault sequence
	// after the crash matches the uninterrupted run's.
	decorate := func(st *runstate.State) {
		s, draws, counts := inj.Snapshot()
		st.Injector = &runstate.InjectorState{Seed: s, EngineDraws: draws, Counts: counts}
	}
	return decorate, func() { fi.SetFaultInjector(nil) }, nil
}
