package lambdatune

import (
	"context"
	"errors"
	"testing"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"zero value", Options{}, true},
		{"defaults", DefaultOptions(), true},
		{"negative samples", Options{Samples: -1}, false},
		{"negative token budget", Options{TokenBudget: -5}, false},
		{"negative timeout", Options{Evaluation: EvaluationOptions{InitialTimeout: -1}}, false},
		{"alpha below two", Options{Evaluation: EvaluationOptions{Alpha: 1.5}}, false},
		{"alpha zero ok", Options{Evaluation: EvaluationOptions{Alpha: 0}}, true},
		{"negative parallelism", Options{Evaluation: EvaluationOptions{Parallelism: -2}}, false},
		{"parallelism ok", Options{Evaluation: EvaluationOptions{Parallelism: 8}}, true},
		{"negative temperature ok", Options{Temperature: -1}, true},
		{"bad llm fault rate", Options{Faults: &FaultPlan{LLMRate: 1.5}}, false},
		{"bad engine fault rate", Options{Faults: &FaultPlan{EngineRate: -0.1}}, false},
		{"fault rates ok", Options{Faults: &FaultPlan{LLMRate: 0.3, EngineRate: 0.1}}, true},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: want error", tc.name)
			} else if !errors.Is(err, ErrInvalidOptions) {
				t.Errorf("%s: error %v does not match ErrInvalidOptions", tc.name, err)
			}
		}
	}
}

func TestTuneContextRejectsInvalidOptions(t *testing.T) {
	db, w, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Evaluation.Parallelism = -1
	if _, err := db.TuneContext(context.Background(), w, NewSimulatedLLM(1), opts); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("err = %v, want ErrInvalidOptions", err)
	}
	if _, err := db.TuneContext(context.Background(), w, nil, DefaultOptions()); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("nil client: err = %v, want ErrInvalidOptions", err)
	}
}

func TestTuneContextEmptyWorkload(t *testing.T) {
	db, _, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.TuneContext(context.Background(), nil, NewSimulatedLLM(1), DefaultOptions()); !errors.Is(err, ErrEmptyWorkload) {
		t.Fatalf("err = %v, want ErrEmptyWorkload", err)
	}
}

// garbageClient returns prose; every sample is unparseable.
type garbageClient struct{}

func (garbageClient) Name() string { return "garbage" }
func (garbageClient) Complete(context.Context, string) (string, error) {
	return "I am sorry, I cannot help with that.", nil
}

func TestTuneNoUsableSample(t *testing.T) {
	db, w, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.TuneContext(context.Background(), w, garbageClient{}, DefaultOptions())
	if !errors.Is(err, ErrNoUsableSample) {
		t.Fatalf("err = %v, want ErrNoUsableSample", err)
	}
	// The aggregate wraps the typed per-sample failures.
	var rejected *ConfigRejectedError
	if !errors.As(err, &rejected) {
		t.Fatalf("err chain is missing *ConfigRejectedError: %v", err)
	}
	if rejected.Reason == "" {
		t.Error("ConfigRejectedError carries no reason")
	}
}

func TestApplyScriptConfigRejected(t *testing.T) {
	db, _, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	err = db.ApplyScript("DROP TABLE lineitem;")
	var rejected *ConfigRejectedError
	if !errors.As(err, &rejected) {
		t.Fatalf("err = %v, want *ConfigRejectedError", err)
	}
	if rejected.Stmt == "" {
		t.Error("rejected statement not recorded")
	}
}
