package lambdatune_test

import (
	"errors"
	"os"
	"testing"

	"lambdatune"
)

// TestCheckpointCrashResumeAPI drives the public API through a chaos crash
// and resume, with engine faults injected — so the fault injector's RNG
// position must survive the crash for the resumed run to see the same
// remaining fault sequence.
func TestCheckpointCrashResumeAPI(t *testing.T) {
	newRun := func() (*lambdatune.Database, *lambdatune.Workload) {
		db, w, err := lambdatune.Benchmark("tpch-1", lambdatune.Postgres)
		if err != nil {
			t.Fatal(err)
		}
		return db, w
	}
	baseOpts := func() lambdatune.Options {
		opts := lambdatune.DefaultOptions()
		opts.Faults = &lambdatune.FaultPlan{EngineRate: 0.05, Seed: 1}
		return opts
	}

	// Uninterrupted reference.
	db, w := newRun()
	want, err := db.Tune(w, lambdatune.NewSimulatedLLM(1), baseOpts())
	if err != nil {
		t.Fatal(err)
	}

	// Crash after round 2's checkpoint.
	dir := t.TempDir()
	db, w = newRun()
	opts := baseOpts()
	opts.Durability.CheckpointDir = dir
	opts.Faults.CrashAfterRound = 2
	if _, err := db.Tune(w, lambdatune.NewSimulatedLLM(1), opts); !errors.Is(err, lambdatune.ErrKilled) {
		t.Fatalf("expected ErrKilled, got %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no checkpoint on disk after kill: %v (%d entries)", err, len(entries))
	}

	// Resume on a fresh database.
	db, w = newRun()
	opts = baseOpts()
	opts.Durability.CheckpointDir = dir
	opts.Durability.Resume = true
	got, err := db.Tune(w, lambdatune.NewSimulatedLLM(1), opts)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !got.Resumed {
		t.Error("Resumed not reported")
	}
	if got.BestScript != want.BestScript {
		t.Errorf("resumed best script differs:\n--- want\n%s\n--- got\n%s", want.BestScript, got.BestScript)
	}
	if got.BestSeconds != want.BestSeconds {
		t.Errorf("best seconds %v != %v", got.BestSeconds, want.BestSeconds)
	}
	if got.TuningSeconds != want.TuningSeconds {
		t.Errorf("tuning seconds %v != %v", got.TuningSeconds, want.TuningSeconds)
	}
}

// TestCheckpointValidation: the API rejects misuse with typed errors.
func TestCheckpointValidation(t *testing.T) {
	db, w, err := lambdatune.Benchmark("tpch-1", lambdatune.Postgres)
	if err != nil {
		t.Fatal(err)
	}
	client := lambdatune.NewSimulatedLLM(1)

	opts := lambdatune.DefaultOptions()
	opts.Durability.Resume = true
	if _, err := db.Tune(w, client, opts); !errors.Is(err, lambdatune.ErrInvalidOptions) {
		t.Errorf("Resume without CheckpointDir: %v", err)
	}

	opts = lambdatune.DefaultOptions()
	opts.Faults = &lambdatune.FaultPlan{CrashAfterRound: 1}
	if _, err := db.Tune(w, client, opts); !errors.Is(err, lambdatune.ErrInvalidOptions) {
		t.Errorf("kill point without CheckpointDir: %v", err)
	}

	// Resuming from an empty directory fails with a clear error.
	opts = lambdatune.DefaultOptions()
	opts.Durability.CheckpointDir = t.TempDir()
	opts.Durability.Resume = true
	if _, err := db.Tune(w, client, opts); err == nil {
		t.Error("resume from empty dir succeeded")
	}

	// A checkpoint from seed 1 refuses to resume a seed-2 run. The run ID
	// embeds the seed, so the missing-file error is the natural refusal; a
	// hand-moved file is caught by the digest check (covered in the tuner
	// tests).
	dir := t.TempDir()
	opts = lambdatune.DefaultOptions()
	opts.Durability.CheckpointDir = dir
	opts.Faults = &lambdatune.FaultPlan{CrashAfterSaves: 1}
	if _, err := db.Tune(w, client, opts); !errors.Is(err, lambdatune.ErrKilled) {
		t.Fatalf("expected ErrKilled, got %v", err)
	}
	opts = lambdatune.DefaultOptions()
	opts.Seed = 2
	opts.Durability.CheckpointDir = dir
	opts.Durability.Resume = true
	if _, err := db.Tune(w, client, opts); err == nil {
		t.Error("seed-2 resume from seed-1 checkpoint succeeded")
	}
}
