package lambdatune

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SchemaFile is the on-disk JSON format accepted by LoadSchema: a database
// name plus table statistics. Example:
//
//	{
//	  "name": "shop",
//	  "tables": [
//	    {
//	      "name": "sales", "rows": 5000000,
//	      "columns": [{"name": "s_id", "widthBytes": 8, "distinct": 5000000}],
//	      "primaryKey": ["s_id"], "foreignKeys": []
//	    }
//	  ]
//	}
type SchemaFile struct {
	Name   string      `json:"name"`
	Tables []TableJSON `json:"tables"`
}

// TableJSON mirrors Table for JSON decoding.
type TableJSON struct {
	Name        string       `json:"name"`
	Rows        int64        `json:"rows"`
	Columns     []ColumnJSON `json:"columns"`
	PrimaryKey  []string     `json:"primaryKey"`
	ForeignKeys []string     `json:"foreignKeys"`
}

// ColumnJSON mirrors Column for JSON decoding.
type ColumnJSON struct {
	Name       string `json:"name"`
	WidthBytes int    `json:"widthBytes"`
	Distinct   int64  `json:"distinct"`
}

// LoadSchema reads a schema-statistics JSON file (see SchemaFile) and
// returns the database name and tables ready for NewDatabase.
func LoadSchema(path string) (string, []Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, fmt.Errorf("lambdatune: read schema: %w", err)
	}
	var sf SchemaFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return "", nil, fmt.Errorf("lambdatune: parse schema %s: %w", path, err)
	}
	if len(sf.Tables) == 0 {
		return "", nil, fmt.Errorf("lambdatune: schema %s has no tables", path)
	}
	tables := make([]Table, len(sf.Tables))
	for i, t := range sf.Tables {
		cols := make([]Column, len(t.Columns))
		for j, c := range t.Columns {
			cols[j] = Column{Name: c.Name, WidthBytes: c.WidthBytes, Distinct: c.Distinct}
		}
		tables[i] = Table{
			Name: t.Name, Rows: t.Rows, Columns: cols,
			PrimaryKey: t.PrimaryKey, ForeignKeys: t.ForeignKeys,
		}
	}
	name := sf.Name
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return name, tables, nil
}

// LoadQueriesDir reads every *.sql file in dir (one query per file; the file
// stem names the query) and compiles them into a workload.
func LoadQueriesDir(dir string) (*Workload, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lambdatune: read workload dir: %w", err)
	}
	queries := map[string]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".sql") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("lambdatune: read %s: %w", e.Name(), err)
		}
		sql := strings.TrimSpace(string(data))
		sql = strings.TrimSuffix(sql, ";")
		if sql == "" {
			continue
		}
		queries[strings.TrimSuffix(e.Name(), ".sql")] = sql
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("lambdatune: no .sql files in %s", dir)
	}
	return ParseWorkload(filepath.Base(dir), queries)
}

// SaveSchema writes tables as a SchemaFile JSON document (the inverse of
// LoadSchema), convenient for exporting the bundled benchmark schemas as
// templates.
func SaveSchema(path, name string, tables []Table) error {
	sf := SchemaFile{Name: name, Tables: make([]TableJSON, len(tables))}
	for i, t := range tables {
		cols := make([]ColumnJSON, len(t.Columns))
		for j, c := range t.Columns {
			cols[j] = ColumnJSON{Name: c.Name, WidthBytes: c.WidthBytes, Distinct: c.Distinct}
		}
		sf.Tables[i] = TableJSON{
			Name: t.Name, Rows: t.Rows, Columns: cols,
			PrimaryKey: t.PrimaryKey, ForeignKeys: t.ForeignKeys,
		}
	}
	sort.Slice(sf.Tables, func(a, b int) bool { return sf.Tables[a].Name < sf.Tables[b].Name })
	data, err := json.MarshalIndent(sf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
