package lambdatune

import (
	"context"
	"fmt"
	"io"
	"sort"

	"lambdatune/internal/backend"
	"lambdatune/internal/backend/instrumented"
	"lambdatune/internal/core/tuner"
	"lambdatune/internal/engine"
	"lambdatune/internal/llm"
	"lambdatune/internal/obs"
	"lambdatune/internal/workload"
)

// RunID derives the checkpoint identity of a workload+seed pair — the
// filename stem checkpoints are stored under in Options.Durability.CheckpointDir
// (sanitized for the filesystem by the store).
func RunID(workload string, seed int64) string {
	return fmt.Sprintf("%s-seed%d", workload, seed)
}

// DBMS selects the emulated database flavor.
type DBMS int

// Supported DBMS flavors.
const (
	Postgres DBMS = DBMS(engine.Postgres)
	MySQL    DBMS = DBMS(engine.MySQL)
)

// Hardware describes the machine the database runs on; the prompt conveys
// exactly these two properties (paper §3.1).
type Hardware struct {
	Cores    int
	MemoryGB int
}

// DefaultHardware matches the paper's EC2 p3.2xlarge testbed.
var DefaultHardware = Hardware{Cores: 8, MemoryGB: 61}

func (h Hardware) toEngine() engine.Hardware {
	if h.Cores <= 0 {
		h = DefaultHardware
	}
	return engine.Hardware{Cores: h.Cores, MemoryBytes: int64(h.MemoryGB) << 30}
}

// Column describes a table column with its statistics.
type Column struct {
	Name       string
	WidthBytes int
	Distinct   int64
}

// Table describes a base table with statistics for the cost model.
type Table struct {
	Name        string
	Rows        int64
	Columns     []Column
	PrimaryKey  []string
	ForeignKeys []string
}

// Client is the language model λ-Tune samples configurations from. Any type
// with these methods works — wrap your favorite LLM API, or use
// NewSimulatedLLM for the bundled deterministic knowledge model.
//
// The context carries cancellation and deadlines: implementations should
// abort the call when ctx is done and honor its deadline when the transport
// supports one (Options.Resilience installs a real per-call deadline).
// Clients that expose a sampling temperature can additionally implement
// TemperatureClient; plain clients are called at their own default.
type Client interface {
	// Complete returns one full configuration script for the prompt.
	Complete(ctx context.Context, prompt string) (string, error)
	// Name identifies the model.
	Name() string
}

// TemperatureClient is an optional capability: clients implementing it
// receive the run's Options.Temperature per call instead of sampling at
// their own default. NewSimulatedLLM's client implements it.
type TemperatureClient interface {
	Client
	// CompleteT is Complete with an explicit sampling temperature.
	CompleteT(ctx context.Context, prompt string, temperature float64) (string, error)
}

// NewSimulatedLLM returns the deterministic GPT-4 stand-in used by the
// reproduction (see DESIGN.md §2). The seed drives its temperature sampling.
func NewSimulatedLLM(seed int64) Client { return llm.NewSimClient(seed) }

// Document is one retrievable text for retrieval-augmented prompting.
type Document struct {
	Title string
	Text  string
}

// WithRetrieval decorates a client with retrieval-augmented generation (the
// extension sketched in the paper's §2): for each prompt, the most relevant
// documents from the corpus are prepended as grounding context. Pass nil to
// use the bundled tuning-guide corpus.
func WithRetrieval(inner Client, corpus []Document) Client {
	docs := make([]llm.Document, len(corpus))
	for i, d := range corpus {
		docs[i] = llm.Document{Title: d.Title, Text: d.Text}
	}
	if len(docs) == 0 {
		docs = llm.DefaultCorpus()
	}
	return llm.NewRAGClient(inner, docs)
}

// Database is a tunable database instance: schema statistics, a live
// configuration, and a virtual clock. It is backed by a backend.Backend —
// the bundled simulator by default (see DESIGN.md §8).
type Database struct {
	db backend.Backend
	// rt / tkey link a database born from Runtime.Benchmark back to its warm
	// template, so the runtime can adopt the job's plan cache afterwards.
	// Zero for standalone databases.
	rt   *Runtime
	tkey templateKey
	// pristine marks a template snapshot whose configuration still matches
	// the template's defaults: no settings applied, no indexes created, no
	// backend rewrap. While it holds, default-workload timings equal the
	// template's and the runtime may serve them from its per-template cache.
	pristine bool
}

// NewDatabase creates a database from a schema description.
func NewDatabase(dbms DBMS, name string, tables []Table, hw Hardware) (*Database, error) {
	ts := make([]engine.Table, len(tables))
	for i, t := range tables {
		cols := make([]engine.Column, len(t.Columns))
		for j, c := range t.Columns {
			cols[j] = engine.Column{Name: c.Name, WidthBytes: c.WidthBytes, Distinct: c.Distinct}
		}
		ts[i] = engine.Table{
			Name: t.Name, Rows: t.Rows, Columns: cols,
			PrimaryKey: t.PrimaryKey, ForeignKeys: t.ForeignKeys,
		}
	}
	cat := engine.NewCatalog(name, ts)
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	db, err := backend.Open("sim", backend.Spec{
		Flavor: engine.Flavor(dbms), Catalog: cat, Hardware: hw.toEngine(),
	})
	if err != nil {
		return nil, err
	}
	return &Database{db: db}, nil
}

// Workload is a set of named OLAP queries.
type Workload struct {
	name    string
	queries []*engine.Query
}

// Name returns the workload label.
func (w *Workload) Name() string { return w.name }

// Len returns the number of queries.
func (w *Workload) Len() int { return len(w.queries) }

// QueryNames lists the query identifiers in order.
func (w *Workload) QueryNames() []string {
	out := make([]string, len(w.queries))
	for i, q := range w.queries {
		out[i] = q.Name
	}
	return out
}

// ParseWorkload compiles SQL texts into a workload. Queries keep the given
// order; names label results.
func ParseWorkload(name string, queries map[string]string) (*Workload, error) {
	w := &Workload{name: name}
	// Deterministic order: sort by name.
	names := make([]string, 0, len(queries))
	for n := range queries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		q, err := engine.PrepareQuery(n, queries[n])
		if err != nil {
			return nil, err
		}
		w.queries = append(w.queries, q)
	}
	return w, nil
}

// Benchmark returns a ready database and workload for one of the paper's
// benchmarks: "tpch-1", "tpch-10", "tpcds-1", or "job".
func Benchmark(name string, dbms DBMS) (*Database, *Workload, error) {
	wl, err := workload.ByName(name)
	if err != nil {
		return nil, nil, err
	}
	db, err := backend.Open("sim", backend.Spec{
		Flavor: engine.Flavor(dbms), Catalog: wl.Catalog, Hardware: engine.DefaultHardware,
	})
	if err != nil {
		return nil, nil, err
	}
	return &Database{db: db}, &Workload{name: wl.Name, queries: wl.Queries}, nil
}

// BenchmarkNames lists the built-in benchmark identifiers.
func BenchmarkNames() []string { return workload.Names() }

// Trace records one tuning run as a hierarchical span tree (run → prompt /
// llm.sample / selection → round → candidate → query / index.build / schedule)
// with virtual-clock timestamps and host wall-clock annotations. Pass it in
// Options.Observability.Trace, then export with WriteJSONL/WriteFile or render a per-phase
// cost breakdown with SummaryTable. Tracing is passive: a traced run selects
// the same configuration, byte for byte, as an untraced one, and the span
// tree itself is deterministic for a fixed workload/seed/parallelism (wall
// times are annotations, never inputs).
type Trace struct {
	tr *obs.Tracer
}

// NewTrace creates an empty trace. One Trace can record several runs; their
// span trees accumulate.
func NewTrace() *Trace { return &Trace{tr: obs.NewTracer()} }

// Len returns the number of recorded spans.
func (t *Trace) Len() int { return t.tr.Len() }

// WriteJSONL writes the recorded spans as JSON Lines, one span per line, in
// deterministic depth-first order.
func (t *Trace) WriteJSONL(w io.Writer) error { return t.tr.WriteJSONL(w) }

// WriteFile writes the spans as a JSONL trace file (the format the
// `lambdatune trace-summary` subcommand reads).
func (t *Trace) WriteFile(path string) error { return t.tr.WriteFile(path) }

// SummaryTable renders the per-phase cost breakdown of the recorded spans.
func (t *Trace) SummaryTable() string { return obs.SummaryTable(t.tr.Summarize()) }

// Tracer exposes the underlying span recorder, so servers (the lambdatuned
// job service's /v1/jobs/{id}/trace endpoints) can retain per-job traces,
// export their records, and follow spans live while a run is still in flight.
// The counterpart of Metrics.Registry.
func (t *Trace) Tracer() *obs.Tracer { return t.tr }

// Metrics is a registry of counters, gauges, and histograms a tuning run
// feeds (tuner_* series, plus backend_* series when the database is
// instrumented). Pass it in Options.Observability.Metrics, then export with
// WritePrometheus (text exposition format) or String (expvar-compatible
// JSON).
type Metrics struct {
	reg *obs.Registry
}

// NewMetrics creates an empty metrics registry. One registry can span
// several runs; counters accumulate.
func NewMetrics() *Metrics { return &Metrics{reg: obs.NewRegistry()} }

// Snapshot returns the current value of every metric; histograms contribute
// <name>_count and <name>_sum entries.
func (m *Metrics) Snapshot() map[string]float64 { return m.reg.Snapshot() }

// WritePrometheus writes the registry in Prometheus text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) error { return m.reg.WritePrometheus(w) }

// String renders the registry as an expvar-compatible JSON object.
func (m *Metrics) String() string { return m.reg.String() }

// Registry exposes the underlying registry, so servers (the CLI's
// -metrics-addr listener, the lambdatuned job service) can mount it on their
// HTTP mux.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// PhaseCost is one row of a run's per-phase cost breakdown.
type PhaseCost struct {
	// Phase is the cost category: "llm", "prompt", "eval", "index-build", or
	// "schedule".
	Phase string
	// Spans counts the phase's leaf spans.
	Spans int
	// VirtSeconds / WallSeconds are the phase's total virtual-clock cost and
	// host wall-clock cost.
	VirtSeconds float64
	WallSeconds float64
}

// Telemetry condenses a run's trace and metrics: span/event totals, the
// per-phase cost breakdown, and a metrics snapshot.
type Telemetry struct {
	// Spans / Events count the run's recorded spans and span events.
	Spans  int
	Events int
	// Phases is the per-phase cost breakdown, most expensive (virtual) first.
	Phases []PhaseCost
	// Metrics is the registry snapshot at the end of the run (nil when
	// Options.Observability.Metrics was not set).
	Metrics map[string]float64
}

func toTelemetry(s *obs.Summary) *Telemetry {
	if s == nil {
		return nil
	}
	t := &Telemetry{Spans: s.Spans, Events: s.Events, Metrics: s.Metrics}
	for _, p := range s.Phases {
		t.Phases = append(t.Phases, PhaseCost{
			Phase: p.Phase, Spans: p.Spans,
			VirtSeconds: p.VirtSeconds, WallSeconds: p.WallSeconds,
		})
	}
	return t
}

// ProgressPoint is one best-so-far improvement during tuning, on the
// database's virtual clock.
type ProgressPoint struct {
	TuningSeconds float64
	BestSeconds   float64
}

// FaultReport is a tuning run's resilience telemetry: what failed, what the
// failures cost in virtual time, and how the pipeline degraded. All fields
// are zero on a clean run.
type FaultReport struct {
	// LLMCalls / LLMFailures / LLMRetries count attempts against the LLM,
	// their failures, and backoff re-attempts (populated when
	// Options.Resilience is set).
	LLMCalls    int
	LLMFailures int
	LLMRetries  int
	// BreakerTrips counts circuit-breaker openings; FallbackCalls counts
	// requests served by the fallback client.
	BreakerTrips  int
	FallbackCalls int
	// BackoffSeconds / BreakerWaitSeconds / FailedCallSeconds are the
	// virtual time spent between retries, waiting out open breaker windows,
	// and inside failed calls — all included in Result.TuningSeconds.
	BackoffSeconds     float64
	BreakerWaitSeconds float64
	FailedCallSeconds  float64
	// DroppedSamples counts LLM samples abandoned after per-sample retries.
	DroppedSamples int
	// QueryAborts / IndexFailures count engine faults survived during
	// configuration selection.
	QueryAborts   int
	IndexFailures int
	// DegradedToDefault reports that no LLM candidate beat the default
	// configuration and the returned best is the pre-tuning baseline.
	DegradedToDefault bool
}

// Any reports whether the run observed any fault or degradation.
func (r FaultReport) Any() bool { return tuner.FaultReport(r).Any() }

// String summarizes the report in one line.
func (r FaultReport) String() string { return tuner.FaultReport(r).String() }

// Result reports a completed tuning run.
type Result struct {
	// BestScript is the winning configuration as a SQL command script
	// (ALTER SYSTEM SET / CREATE INDEX).
	BestScript string
	// BestSeconds is the full-workload execution time under the winning
	// configuration, in simulated seconds.
	BestSeconds float64
	// DefaultSeconds is the time under the configuration that was live
	// before tuning.
	DefaultSeconds float64
	// TuningSeconds is the total virtual time the run consumed, including
	// index creations and interrupted evaluations. With Options.Evaluation.Parallelism
	// > 1 it models N replicas evaluating concurrently: each round costs the
	// slowest replica's elapsed time.
	TuningSeconds float64
	// EvalWallSeconds is the real wall-clock time of the configuration
	// selection phase — the quantity Options.Evaluation.Parallelism reduces.
	EvalWallSeconds float64
	// PromptTokens counts the tokens of the generated prompt.
	PromptTokens int
	// Candidates is the number of configurations obtained from the LLM.
	Candidates int
	// Progress traces best-so-far improvements.
	Progress []ProgressPoint
	// Warnings lists non-fatal issues (skipped unknown parameters etc.).
	Warnings []string
	// Faults is the run's resilience telemetry (zero-valued on a clean run).
	Faults FaultReport
	// Telemetry condenses the run's trace and metrics. Non-nil whenever
	// Options.Observability.Trace or Options.Observability.Metrics was set.
	Telemetry *Telemetry
	// Resumed reports that the run continued from a durable checkpoint
	// (Options.Durability.Resume) instead of starting fresh.
	Resumed bool
	// CheckpointFellBack reports that the live checkpoint was corrupt (torn
	// write) and the run resumed from the previous generation instead.
	CheckpointFellBack bool

	best *engine.Config
}

// Speedup returns DefaultSeconds / BestSeconds.
func (r *Result) Speedup() float64 {
	if r.BestSeconds <= 0 {
		return 0
	}
	return r.DefaultSeconds / r.BestSeconds
}

// Indexes lists the winning configuration's index recommendations as
// "table(column)" strings.
func (r *Result) Indexes() []string {
	if r.best == nil {
		return nil
	}
	out := make([]string, len(r.best.Indexes))
	for i, ix := range r.best.Indexes {
		out[i] = ix.Key()
	}
	return out
}

// Parameters returns the winning configuration's parameter settings.
func (r *Result) Parameters() map[string]string {
	if r.best == nil {
		return nil
	}
	out := make(map[string]string, len(r.best.Params))
	for k, v := range r.best.Params {
		out[k] = v
	}
	return out
}

// Tune runs the λ-Tune pipeline (paper Algorithm 1) against the database.
// It is TuneContext with context.Background() — use TuneContext to bound
// the run with a deadline or cancel it.
func (d *Database) Tune(w *Workload, client Client, opts Options) (*Result, error) {
	return d.TuneContext(context.Background(), w, client, opts)
}

// TuneContext runs the λ-Tune pipeline (paper Algorithm 1) against the
// database. Cancelling ctx stops the run promptly — in-flight LLM calls are
// cancelled, and evaluation workers stop within one query execution —
// returning an error satisfying errors.Is(err, ctx.Err()).
//
// Errors: invalid opts return ErrInvalidOptions, a nil or empty workload
// ErrEmptyWorkload, and a run whose every LLM sample failed
// ErrNoUsableSample (all matchable with errors.Is).
//
// TuneContext is a one-shot Runtime: it builds a private shared-nothing
// Runtime for exactly this run and tunes through it, so the standalone and
// Runtime paths are one code path. Behavior is identical to pre-Runtime
// releases — no admission gate, no tenant breaker, and a memo nobody else
// can share.
func (d *Database) TuneContext(ctx context.Context, w *Workload, client Client, opts Options) (*Result, error) {
	rt := NewRuntime(RuntimeOptions{})
	defer rt.Close()
	return rt.TuneContext(ctx, d, w, client, opts)
}

// Apply installs the tuning result's winning configuration on the database:
// parameters set, recommended indexes created (the virtual clock advances by
// the creation time).
func (d *Database) Apply(r *Result) error {
	if r == nil || r.best == nil {
		return fmt.Errorf("lambdatune: no configuration to apply")
	}
	d.pristine = false
	d.db.DropTransientIndexes()
	if err := d.db.ApplyConfig(r.best); err != nil {
		return err
	}
	for _, ix := range r.best.Indexes {
		d.db.CreateIndex(ix)
	}
	return nil
}

// ApplyScript parses and installs a configuration script directly.
func (d *Database) ApplyScript(script string) error {
	cfg, _, err := engine.ParseScript(d.db.Flavor(), "user", script)
	if err != nil {
		return err
	}
	d.pristine = false
	d.db.DropTransientIndexes()
	if err := d.db.ApplyConfig(cfg); err != nil {
		return err
	}
	for _, ix := range cfg.Indexes {
		d.db.CreateIndex(ix)
	}
	return nil
}

// WorkloadSeconds returns the workload's execution time under the current
// configuration without advancing the clock.
func (d *Database) WorkloadSeconds(w *Workload) float64 {
	return d.db.WorkloadSeconds(w.queries)
}

// QuerySeconds returns per-query runtimes under the current configuration,
// keyed by query name.
func (d *Database) QuerySeconds(w *Workload) map[string]float64 {
	out := make(map[string]float64, len(w.queries))
	for _, q := range w.queries {
		out[q.Name] = d.db.QuerySeconds(q)
	}
	return out
}

// ResetConfiguration restores default parameters and drops all indexes
// created through tuning. Applying an empty configuration resets every
// parameter to its default, so this works on any backend.
func (d *Database) ResetConfiguration() {
	d.pristine = false
	d.db.DropTransientIndexes()
	_ = d.db.ApplyConfig(&engine.Config{ID: "reset"})
}

// ClockSeconds returns the database's virtual time.
func (d *Database) ClockSeconds() float64 { return d.db.Clock().Now() }

// Instrument wraps the database's backend with the telemetry decorator:
// from this call on, every ApplyConfig, CreateIndex, RunQuery, and Explain
// is counted and timed (wall-clock and virtual-clock). Call once, before
// tuning; instrumenting an already-instrumented database layers a second
// decorator. BackendReport returns the accumulated numbers.
func (d *Database) Instrument() {
	// The decorator counts every backend call; serving cached timings would
	// skip those counts, so an instrumented database is never pristine.
	d.pristine = false
	d.db = instrumented.Wrap(d.db)
}

// BackendReport returns the per-surface telemetry accumulated since
// Instrument was called, formatted for humans, or "" when the database is
// not instrumented.
func (d *Database) BackendReport() string {
	ib, ok := d.db.(backend.Instrumented)
	if !ok {
		return ""
	}
	st := ib.BackendStats()
	return st.String()
}

// SetPlanCache enables or disables the backend's plan-memoization cache
// (enabled by default on the simulator). Memoization only changes host CPU
// time — every simulated measurement, the virtual clock, and the tuning
// outcome are identical either way — so the toggle exists for benchmarking
// the cache itself. A no-op on backends without the capability.
func (d *Database) SetPlanCache(on bool) { backend.SetPlanCache(d.db, on) }

// PlanCacheStats returns the backend's plan-memoization counters (hits,
// misses, evictions), or zeros on backends without the capability.
func (d *Database) PlanCacheStats() engine.PlanCacheStats { return backend.PlanCache(d.db) }
