package lambdatune

// Tests of the Options redesign: grouped fields, deprecated flat aliases,
// and their reconciliation. This file deliberately reads and writes the
// deprecated flat fields — it is allowlisted by the deprecated-field gate
// (TestNoNewDeprecatedOptionsFieldUses).

import (
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

func TestDeprecatedAliasesReconcile(t *testing.T) {
	tr, m := NewTrace(), NewMetrics()
	o := Options{
		InitialTimeout: 7,
		Alpha:          3,
		Parallelism:    4,
		Trace:          tr,
		Metrics:        m,
		Progress:       io.Discard,
		CheckpointDir:  "/tmp/ckpt",
		Resume:         true,
	}
	n, err := o.normalized()
	if err != nil {
		t.Fatal(err)
	}
	e, d, ob := n.Evaluation, n.Durability, n.Observability
	if e.InitialTimeout != 7 || e.Alpha != 3 || e.Parallelism != 4 {
		t.Errorf("evaluation group not filled from aliases: %+v", e)
	}
	if ob.Trace != tr || ob.Metrics != m || ob.Progress != io.Discard {
		t.Errorf("observability group not filled from aliases: %+v", ob)
	}
	if d.CheckpointDir != "/tmp/ckpt" || !d.Resume {
		t.Errorf("durability group not filled from aliases: %+v", d)
	}
	// The flat aliases are zeroed, so only the groups are authoritative.
	if n.InitialTimeout != 0 || n.Alpha != 0 || n.Parallelism != 0 ||
		n.Trace != nil || n.Metrics != nil || n.Progress != nil ||
		n.CheckpointDir != "" || n.Resume {
		t.Errorf("flat aliases not zeroed after normalization: %+v", n)
	}
}

func TestDeprecatedAliasAgreementIsNotAConflict(t *testing.T) {
	tr := NewTrace()
	o := Options{
		InitialTimeout: 7,
		Trace:          tr,
		CheckpointDir:  "/tmp/ckpt",
		Evaluation:     EvaluationOptions{InitialTimeout: 7},
		Observability:  ObservabilityOptions{Trace: tr},
		Durability:     DurabilityOptions{CheckpointDir: "/tmp/ckpt"},
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("agreeing alias and group rejected: %v", err)
	}
}

func TestDeprecatedAliasConflicts(t *testing.T) {
	cases := []struct {
		name string
		o    Options
		want string
	}{
		{"InitialTimeout", Options{InitialTimeout: 7, Evaluation: EvaluationOptions{InitialTimeout: 9}}, "InitialTimeout"},
		{"Alpha", Options{Alpha: 2, Evaluation: EvaluationOptions{Alpha: 3}}, "Alpha"},
		{"Parallelism", Options{Parallelism: 2, Evaluation: EvaluationOptions{Parallelism: 4}}, "Parallelism"},
		{"Trace", Options{Trace: NewTrace(), Observability: ObservabilityOptions{Trace: NewTrace()}}, "Trace"},
		{"Metrics", Options{Metrics: NewMetrics(), Observability: ObservabilityOptions{Metrics: NewMetrics()}}, "Metrics"},
		// Progress writers are not comparable, so both being set is always a
		// conflict — even when they are the same writer.
		{"Progress", Options{Progress: io.Discard, Observability: ObservabilityOptions{Progress: io.Discard}}, "Progress"},
		{"CheckpointDir", Options{CheckpointDir: "/a", Durability: DurabilityOptions{CheckpointDir: "/b"}}, "CheckpointDir"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.o.Validate()
			if !errors.Is(err, ErrInvalidOptions) {
				t.Fatalf("want ErrInvalidOptions, got %v", err)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not name %s", err, c.want)
			}
		})
	}
}

func TestValidateGroupedFields(t *testing.T) {
	cases := []struct {
		name string
		o    Options
		ok   bool
	}{
		{"zero value", Options{}, true},
		{"racing defaults", Options{Evaluation: EvaluationOptions{Strategy: Racing}}, true},
		{"racing tuned", Options{Evaluation: EvaluationOptions{
			Strategy: Racing,
			Racing:   &RacingOptions{StartFraction: 0.25, Growth: 3, FinalSurvivors: 3},
		}}, true},
		{"racing options without racing strategy", Options{Evaluation: EvaluationOptions{
			Racing: &RacingOptions{StartFraction: 0.25},
		}}, false},
		{"bad strategy", Options{Evaluation: EvaluationOptions{Strategy: EvalStrategy(42)}}, false},
		{"bad start fraction", Options{Evaluation: EvaluationOptions{
			Strategy: Racing, Racing: &RacingOptions{StartFraction: 1.5},
		}}, false},
		{"bad growth", Options{Evaluation: EvaluationOptions{
			Strategy: Racing, Racing: &RacingOptions{Growth: 0.5},
		}}, false},
		{"negative final survivors", Options{Evaluation: EvaluationOptions{
			Strategy: Racing, Racing: &RacingOptions{FinalSurvivors: -1},
		}}, false},
		{"grouped resume without dir", Options{Durability: DurabilityOptions{Resume: true}}, false},
		{"flat resume without dir", Options{Resume: true}, false},
		{"flat resume with grouped dir", Options{Resume: true,
			Durability: DurabilityOptions{CheckpointDir: "/tmp/x"}}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.o.Validate()
			if c.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !c.ok && !errors.Is(err, ErrInvalidOptions) {
				t.Errorf("want ErrInvalidOptions, got %v", err)
			}
		})
	}
}

// TestTuneHonorsDeprecatedAliases: a run configured only through the flat
// aliases behaves identically to one configured through the groups.
func TestTuneHonorsDeprecatedAliases(t *testing.T) {
	run := func(opts Options) float64 {
		db, w, err := Benchmark("tpch-1", Postgres)
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Tune(w, NewSimulatedLLM(1), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.TuningSeconds
	}
	flat := DefaultOptions()
	flat.Parallelism = 4
	grouped := DefaultOptions()
	grouped.Evaluation.Parallelism = 4
	if f, g := run(flat), run(grouped); f != g {
		t.Errorf("flat Parallelism run (%v) differs from grouped (%v)", f, g)
	}
}

// TestTuneRacingStrategy: the racing strategy is reachable through the
// public API and returns a complete, exact result.
func TestTuneRacingStrategy(t *testing.T) {
	db, w, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Samples = 8
	opts.Evaluation.Strategy = Racing
	res, err := db.Tune(w, NewSimulatedLLM(1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScript == "" || res.BestSeconds <= 0 {
		t.Fatalf("racing run returned no usable configuration: %+v", res)
	}
	// The winner's reported time is exact: re-measuring the returned script
	// on a fresh instance reproduces BestSeconds.
	db2, w2, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.ApplyScript(res.BestScript); err != nil {
		t.Fatal(err)
	}
	// Summation order differs (DP-schedule order vs workload order), so
	// allow float reassociation noise and nothing more.
	if got := db2.WorkloadSeconds(w2); math.Abs(got-res.BestSeconds) > 1e-9 {
		t.Errorf("re-measured workload time %v != reported BestSeconds %v", got, res.BestSeconds)
	}
	if res.Speedup() <= 1 {
		t.Errorf("racing-selected configuration is not an improvement: speedup %v", res.Speedup())
	}
	_ = w
}
