GO ?= go

.PHONY: build vet test race verify fmt-check ci bench scaling bench-race bench-runtime bench-jobs bench-obs chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

## verify: the tier-1 gate — everything CI runs, in order.
verify: build vet test race

## fmt-check: fail when any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

## ci: what .github/workflows/ci.yml runs — the tier-1 gate plus formatting.
ci: fmt-check verify

## bench: regenerate every paper table & figure (one iteration each).
bench:
	$(GO) test -bench=. -benchtime=1x ./...

## scaling: the E13 parallel-evaluation scaling study.
scaling:
	$(GO) run ./cmd/benchrunner -exp scaling

## bench-race: the E14 racing-vs-full evaluation study; refreshes BENCH_race.json.
bench-race:
	$(GO) run ./cmd/benchrunner -exp race -race-json BENCH_race.json

## bench-runtime: the E15 shared-runtime reuse study; refreshes BENCH_runtime.json.
bench-runtime:
	$(GO) run ./cmd/benchrunner -exp runtime -runtime-json BENCH_runtime.json

## bench-jobs: the E16 job-throughput study (legacy vs segmented-LRU memo
## lifecycle under a 1000-job daemon stream); refreshes BENCH_jobs.json.
bench-jobs:
	$(GO) run ./cmd/benchrunner -exp jobs -jobs-json BENCH_jobs.json

## bench-obs: the E17 observability-overhead study (telemetry dark vs live on
## the E16 thousand-job stream); refreshes BENCH_obs.json.
bench-obs:
	$(GO) run ./cmd/benchrunner -exp obsoverhead -obs-json BENCH_obs.json

## chaos: the crash-recovery suite under the race detector — kill/resume at
## every checkpoint boundary, torn-write fallback, daemon drain/re-adopt.
chaos:
	$(GO) test -race -run 'Chaos|KillResume|Checkpoint|Resume|Kill|Torn|Drain|Readopt|Daemon|Panic' \
		./internal/runstate/ ./internal/faults/ ./internal/core/tuner/ \
		./internal/bench/ ./internal/service/ ./cmd/lambdatune/ ./cmd/lambdatuned/ .
