GO ?= go

.PHONY: build vet test race verify bench scaling

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

## verify: the tier-1 gate — everything CI runs, in order.
verify: build vet test race

## bench: regenerate every paper table & figure (one iteration each).
bench:
	$(GO) test -bench=. -benchtime=1x ./...

## scaling: the E13 parallel-evaluation scaling study.
scaling:
	$(GO) run ./cmd/benchrunner -exp scaling
