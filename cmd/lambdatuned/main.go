// Command lambdatuned is the crash-recoverable tuning service: a
// long-running daemon that accepts tuning jobs over HTTP/JSON, runs them on
// a bounded worker pool, and checkpoints every run durably. Kill the
// process mid-job — SIGTERM, crash, power cut — and the restarted daemon
// re-adopts the job and resumes it from the last checkpoint.
//
// Usage:
//
//	lambdatuned -addr :8080 -data-dir /var/lib/lambdatune
//
// API:
//
//	POST /v1/jobs              {"benchmark": "tpch-1", "seed": 1}  → 202 + job
//	GET  /v1/jobs              list all jobs
//	GET  /v1/jobs/{id}         job status and result
//	POST /v1/jobs/{id}/cancel  cancel a queued or running job
//	GET  /v1/jobs/{id}/stream  live progress lines until the job ends
//
// Unknown paths — including the removed pre-/v1 unversioned /jobs* routes —
// answer 404 with the APIError JSON envelope.
//
//	GET  /healthz, /readyz     liveness / readiness (503 + typed draining envelope while draining)
//	GET  /metrics              Prometheus text exposition (service_* and runtime_* series)
//
// All jobs run on one shared tuning runtime: jobs over the same benchmark
// and DBMS share plan caches and schedule memos (wall-time savings only;
// per-job results are identical to isolated runs), while per-tenant LLM
// breaker state and memo namespaces stay isolated. -eval-slots bounds the
// evaluation workers running concurrently across all jobs, shared under
// weighted fair scheduling (-tenant-weight name=weight, repeatable), and
// the remaining -tenant-* flags configure the per-tenant LLM circuit
// breaker and in-flight bound (all off by default). -pprof-addr serves
// net/http/pprof on a separate listener for live profiling.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lambdatune"
	"lambdatune/internal/service"
)

func main() {
	// SIGTERM and SIGINT begin the graceful drain: readiness flips to 503,
	// in-flight jobs checkpoint and are marked interrupted, then the
	// listener closes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the daemon entrypoint, separated from main so tests can drive the
// full lifecycle — boot, serve, drain — in-process; canceling ctx is the
// test's SIGTERM.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lambdatuned", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8080", "HTTP listen address")
		dataDir    = fs.String("data-dir", "", "durable state directory: job records and run checkpoints (required)")
		workers    = fs.Int("workers", 2, "concurrently running jobs")
		queueDepth = fs.Int("queue-depth", 64, "queued-job backlog bound; a full queue rejects enqueues")
		rateBurst  = fs.Int("rate-burst", 0, "per-tenant enqueue burst (0 = unlimited)")
		ratePerSec = fs.Float64("rate-per-second", 1, "per-tenant enqueue refill rate, tokens/second")
		drainWait  = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on shutdown")
		quiet      = fs.Bool("quiet", false, "suppress per-job operational logs")

		evalSlots        = fs.Int("eval-slots", 0, "evaluation workers running concurrently across all jobs (0 = unbounded)")
		pprofAddr        = fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off); kept off the API listener so profiling is never internet-facing")
		breakerThreshold = fs.Int("tenant-breaker-threshold", 0, "consecutive LLM failures tripping a tenant's circuit breaker (0 = off)")
		breakerCooldown  = fs.Duration("tenant-breaker-cooldown", 30*time.Second, "wall-clock time a tripped tenant breaker stays open")
		maxInFlight      = fs.Int("tenant-max-inflight", 0, "per-tenant concurrent LLM calls (0 = unbounded)")
	)
	// -tenant-weight is repeatable: each occurrence grants one tenant a
	// fair-share weight on the evaluation slot scheduler (default 1).
	tenantWeights := map[string]int{}
	fs.Func("tenant-weight", "tenant evaluation-slot weight as name=weight (repeatable; unlisted tenants weigh 1)", func(v string) error {
		name, w, ok := strings.Cut(v, "=")
		if !ok || name == "" {
			return fmt.Errorf("want name=weight, got %q", v)
		}
		n, err := strconv.Atoi(w)
		if err != nil || n < 1 {
			return fmt.Errorf("weight must be a positive integer, got %q", w)
		}
		tenantWeights[name] = n
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dataDir == "" {
		fmt.Fprintln(stderr, "-data-dir is required (job state must survive restarts)")
		return 2
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(stderr, "lambdatuned: "+format+"\n", a...)
	}
	joblog := logf
	if *quiet {
		joblog = func(string, ...any) {}
	}
	// One registry backs both the runtime_* and service_* series, so the
	// /metrics exposition shows the shared runtime next to the job table.
	rtMetrics := lambdatune.NewMetrics()
	reg := rtMetrics.Registry()
	rt := lambdatune.NewRuntime(lambdatune.RuntimeOptions{
		EvalSlots:              *evalSlots,
		TenantWeights:          tenantWeights,
		TenantBreakerThreshold: *breakerThreshold,
		TenantBreakerCooldown:  *breakerCooldown,
		TenantMaxInFlight:      *maxInFlight,
		Metrics:                rtMetrics,
	})
	defer rt.Close()
	m, err := service.Open(service.Config{
		DataDir:       *dataDir,
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		RateBurst:     *rateBurst,
		RatePerSecond: *ratePerSec,
		Metrics:       reg,
		Runtime:       rt,
		Logf:          joblog,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		_ = m.Close()
		return 1
	}
	if *pprofAddr != "" {
		// The profiler gets its own mux and listener: the API handler never
		// exposes /debug/pprof/, and the operator chooses a loopback-only
		// address for it independently of -addr.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			_ = m.Close()
			return 1
		}
		defer pln.Close()
		go func() { _ = http.Serve(pln, pmux) }()
		logf("pprof on http://%s/debug/pprof/", pln.Addr())
	}
	srv := &http.Server{Handler: m.Handler(), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logf("listening on %s (data dir %s)", ln.Addr(), *dataDir)

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(stderr, err)
		_ = m.Close()
		return 1
	}

	// Drain before closing the listener: status queries keep working (and
	// /readyz reports 503) while in-flight jobs checkpoint and stop.
	logf("draining: in-flight jobs checkpoint and resume on the next start")
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := m.Drain(dctx); err != nil {
		logf("drain: %v", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		logf("shutdown: %v", err)
		return 1
	}
	logf("stopped")
	return 0
}
