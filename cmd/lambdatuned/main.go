// Command lambdatuned is the crash-recoverable tuning service: a
// long-running daemon that accepts tuning jobs over HTTP/JSON, runs them on
// a bounded worker pool, and checkpoints every run durably. Kill the
// process mid-job — SIGTERM, crash, power cut — and the restarted daemon
// re-adopts the job and resumes it from the last checkpoint.
//
// Usage:
//
//	lambdatuned -addr :8080 -data-dir /var/lib/lambdatune
//
// API:
//
//	POST /v1/jobs              {"benchmark": "tpch-1", "seed": 1}  → 202 + job
//	GET  /v1/jobs              list all jobs
//	GET  /v1/jobs/{id}         job status and result
//	POST /v1/jobs/{id}/cancel  cancel a queued or running job
//	GET  /v1/jobs/{id}/stream  live progress lines until the job ends
//	GET  /v1/jobs/{id}/trace   the job's span tree as JSONL (pipe into `lambdatune trace-summary`)
//	GET  /v1/jobs/{id}/summary per-phase cost breakdown as JSON
//	GET  /v1/jobs/{id}/trace/stream  spans streamed live as the job runs
//
// Unknown paths — including the removed pre-/v1 unversioned /jobs* routes —
// answer 404 with the APIError JSON envelope.
//
//	GET  /healthz, /readyz     liveness / readiness (503 + typed draining envelope while draining)
//	GET  /metrics              Prometheus text exposition (service_* and runtime_* series)
//
// All jobs run on one shared tuning runtime: jobs over the same benchmark
// and DBMS share plan caches and schedule memos (wall-time savings only;
// per-job results are identical to isolated runs), while per-tenant LLM
// breaker state and memo namespaces stay isolated. -eval-slots bounds the
// evaluation workers running concurrently across all jobs, shared under
// weighted fair scheduling (-tenant-weight name=weight, repeatable), and
// the remaining -tenant-* flags configure the per-tenant LLM circuit
// breaker and in-flight bound (all off by default). -pprof-addr serves
// net/http/pprof on a separate listener for live profiling.
//
// Every log line is structured (log/slog): -log-format selects text or json,
// -log-level the minimum severity, and job-scoped lines carry consistent
// job_id/tenant/run_id keys end to end. -quiet suppresses per-job logs while
// keeping the daemon's own lifecycle lines.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lambdatune"
	"lambdatune/internal/service"
)

func main() {
	// SIGTERM and SIGINT begin the graceful drain: readiness flips to 503,
	// in-flight jobs checkpoint and are marked interrupted, then the
	// listener closes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the daemon entrypoint, separated from main so tests can drive the
// full lifecycle — boot, serve, drain — in-process; canceling ctx is the
// test's SIGTERM.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lambdatuned", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8080", "HTTP listen address")
		dataDir    = fs.String("data-dir", "", "durable state directory: job records and run checkpoints (required)")
		workers    = fs.Int("workers", 2, "concurrently running jobs")
		queueDepth = fs.Int("queue-depth", 64, "queued-job backlog bound; a full queue rejects enqueues")
		rateBurst  = fs.Int("rate-burst", 0, "per-tenant enqueue burst (0 = unlimited)")
		ratePerSec = fs.Float64("rate-per-second", 1, "per-tenant enqueue refill rate, tokens/second")
		drainWait  = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on shutdown")
		quiet      = fs.Bool("quiet", false, "suppress per-job operational logs")
		logFormat  = fs.String("log-format", "text", "structured log encoding: text or json")
		logLevel   = fs.String("log-level", "info", "minimum log level: debug, info, warn, or error")

		evalSlots        = fs.Int("eval-slots", 0, "evaluation workers running concurrently across all jobs (0 = unbounded)")
		pprofAddr        = fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off); kept off the API listener so profiling is never internet-facing")
		breakerThreshold = fs.Int("tenant-breaker-threshold", 0, "consecutive LLM failures tripping a tenant's circuit breaker (0 = off)")
		breakerCooldown  = fs.Duration("tenant-breaker-cooldown", 30*time.Second, "wall-clock time a tripped tenant breaker stays open")
		maxInFlight      = fs.Int("tenant-max-inflight", 0, "per-tenant concurrent LLM calls (0 = unbounded)")
	)
	// -tenant-weight is repeatable: each occurrence grants one tenant a
	// fair-share weight on the evaluation slot scheduler (default 1).
	tenantWeights := map[string]int{}
	fs.Func("tenant-weight", "tenant evaluation-slot weight as name=weight (repeatable; unlisted tenants weigh 1)", func(v string) error {
		name, w, ok := strings.Cut(v, "=")
		if !ok || name == "" {
			return fmt.Errorf("want name=weight, got %q", v)
		}
		n, err := strconv.Atoi(w)
		if err != nil || n < 1 {
			return fmt.Errorf("weight must be a positive integer, got %q", w)
		}
		tenantWeights[name] = n
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dataDir == "" {
		fmt.Fprintln(stderr, "-data-dir is required (job state must survive restarts)")
		return 2
	}

	// Every daemon log line is structured: -log-format selects the encoding,
	// -log-level the floor. Job-scoped lines carry job_id/tenant/run_id keys
	// (added by the service); -quiet silences per-job logs only, keeping the
	// daemon's own boot/drain lines.
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(stderr, "invalid -log-level %q (want debug, info, warn, or error)\n", *logLevel)
		return 2
	}
	hopts := &slog.HandlerOptions{Level: level}
	var logg *slog.Logger
	switch *logFormat {
	case "text":
		logg = slog.New(slog.NewTextHandler(stderr, hopts))
	case "json":
		logg = slog.New(slog.NewJSONHandler(stderr, hopts))
	default:
		fmt.Fprintf(stderr, "invalid -log-format %q (want text or json)\n", *logFormat)
		return 2
	}
	svcLogger := logg
	if *quiet {
		svcLogger = nil // service falls back to its discard logger
	}
	// One registry backs both the runtime_* and service_* series, so the
	// /metrics exposition shows the shared runtime next to the job table.
	rtMetrics := lambdatune.NewMetrics()
	reg := rtMetrics.Registry()
	rt := lambdatune.NewRuntime(lambdatune.RuntimeOptions{
		EvalSlots:              *evalSlots,
		TenantWeights:          tenantWeights,
		TenantBreakerThreshold: *breakerThreshold,
		TenantBreakerCooldown:  *breakerCooldown,
		TenantMaxInFlight:      *maxInFlight,
		Metrics:                rtMetrics,
		Logger:                 logg,
	})
	defer rt.Close()
	m, err := service.Open(service.Config{
		DataDir:       *dataDir,
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		RateBurst:     *rateBurst,
		RatePerSecond: *ratePerSec,
		Metrics:       reg,
		Runtime:       rt,
		Logger:        svcLogger,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		_ = m.Close()
		return 1
	}
	if *pprofAddr != "" {
		// The profiler gets its own mux and listener: the API handler never
		// exposes /debug/pprof/, and the operator chooses a loopback-only
		// address for it independently of -addr.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			_ = m.Close()
			return 1
		}
		defer pln.Close()
		go func() { _ = http.Serve(pln, pmux) }()
		logg.Info("pprof listening", "url", fmt.Sprintf("http://%s/debug/pprof/", pln.Addr()))
	}
	srv := &http.Server{Handler: m.Handler(), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logg.Info("listening", "addr", ln.Addr().String(), "data_dir", *dataDir)

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(stderr, err)
		_ = m.Close()
		return 1
	}

	// Drain before closing the listener: status queries keep working (and
	// /readyz reports 503) while in-flight jobs checkpoint and stop.
	logg.Info("draining", "note", "in-flight jobs checkpoint and resume on the next start")
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := m.Drain(dctx); err != nil {
		logg.Error("drain failed", "error", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		logg.Error("shutdown failed", "error", err)
		return 1
	}
	logg.Info("stopped")
	return 0
}
