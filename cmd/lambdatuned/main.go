// Command lambdatuned is the crash-recoverable tuning service: a
// long-running daemon that accepts tuning jobs over HTTP/JSON, runs them on
// a bounded worker pool, and checkpoints every run durably. Kill the
// process mid-job — SIGTERM, crash, power cut — and the restarted daemon
// re-adopts the job and resumes it from the last checkpoint.
//
// Usage:
//
//	lambdatuned -addr :8080 -data-dir /var/lib/lambdatune
//
// API:
//
//	POST /v1/jobs              {"benchmark": "tpch-1", "seed": 1}  → 202 + job
//	GET  /v1/jobs              list all jobs
//	GET  /v1/jobs/{id}         job status and result
//	POST /v1/jobs/{id}/cancel  cancel a queued or running job
//	GET  /v1/jobs/{id}/stream  live progress lines until the job ends
//
// Unversioned /jobs* paths from the previous release answer with a 308
// Permanent Redirect to their /v1 twin.
//
//	GET  /healthz, /readyz     liveness / readiness (503 while draining)
//	GET  /metrics              Prometheus text exposition
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lambdatune/internal/obs"
	"lambdatune/internal/service"
)

func main() {
	// SIGTERM and SIGINT begin the graceful drain: readiness flips to 503,
	// in-flight jobs checkpoint and are marked interrupted, then the
	// listener closes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the daemon entrypoint, separated from main so tests can drive the
// full lifecycle — boot, serve, drain — in-process; canceling ctx is the
// test's SIGTERM.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lambdatuned", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8080", "HTTP listen address")
		dataDir    = fs.String("data-dir", "", "durable state directory: job records and run checkpoints (required)")
		workers    = fs.Int("workers", 2, "concurrently running jobs")
		queueDepth = fs.Int("queue-depth", 64, "queued-job backlog bound; a full queue rejects enqueues")
		rateBurst  = fs.Int("rate-burst", 0, "per-tenant enqueue burst (0 = unlimited)")
		ratePerSec = fs.Float64("rate-per-second", 1, "per-tenant enqueue refill rate, tokens/second")
		drainWait  = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on shutdown")
		quiet      = fs.Bool("quiet", false, "suppress per-job operational logs")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dataDir == "" {
		fmt.Fprintln(stderr, "-data-dir is required (job state must survive restarts)")
		return 2
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(stderr, "lambdatuned: "+format+"\n", a...)
	}
	joblog := logf
	if *quiet {
		joblog = func(string, ...any) {}
	}
	reg := obs.NewRegistry()
	m, err := service.Open(service.Config{
		DataDir:       *dataDir,
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		RateBurst:     *rateBurst,
		RatePerSecond: *ratePerSec,
		Metrics:       reg,
		Logf:          joblog,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		_ = m.Close()
		return 1
	}
	srv := &http.Server{Handler: m.Handler(), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logf("listening on %s (data dir %s)", ln.Addr(), *dataDir)

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(stderr, err)
		_ = m.Close()
		return 1
	}

	// Drain before closing the listener: status queries keep working (and
	// /readyz reports 503) while in-flight jobs checkpoint and stop.
	logf("draining: in-flight jobs checkpoint and resume on the next start")
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := m.Drain(dctx); err != nil {
		logf("drain: %v", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		logf("shutdown: %v", err)
		return 1
	}
	logf("stopped")
	return 0
}
