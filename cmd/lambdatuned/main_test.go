package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"lambdatune"
)

// lineWatch is an io.Writer that captures output and signals the resolved
// listen address the daemon logs at boot.
type lineWatch struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	addr chan string
	seen bool
}

// addrRe pulls the resolved listen address out of the boot log in either
// encoding: `msg=listening addr=127.0.0.1:123` (text) or
// `"msg":"listening","addr":"127.0.0.1:123"` (json).
var addrRe = regexp.MustCompile(`"?addr"?[=:]"?([^ "\n]+)"?`)

func (w *lineWatch) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.seen {
		if m := addrRe.FindSubmatch(w.buf.Bytes()); m != nil {
			w.seen = true
			w.addr <- string(m[1])
		}
	}
	return len(p), nil
}

func (w *lineWatch) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// startDaemon boots the daemon in-process on a random port and returns its
// base URL plus a stop function that performs the graceful drain (the test's
// SIGTERM) and returns the exit code.
func startDaemon(t *testing.T, extraArgs ...string) (string, *lineWatch, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	watch := &lineWatch{addr: make(chan string, 1)}
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	code := make(chan int, 1)
	go func() { code <- run(ctx, args, watch, watch) }()

	var addr string
	select {
	case addr = <-watch.addr:
	case <-time.After(30 * time.Second):
		cancel()
		t.Fatalf("daemon never reported its address; output:\n%s", watch.String())
	}
	stopped := false
	stop := func() int {
		stopped = true
		cancel()
		select {
		case c := <-code:
			return c
		case <-time.After(60 * time.Second):
			t.Fatalf("daemon did not stop; output:\n%s", watch.String())
			return -1
		}
	}
	t.Cleanup(func() {
		if !stopped {
			stop()
		}
	})
	return "http://" + addr, watch, stop
}

type jobView struct {
	ID      string `json:"id"`
	Status  string `json:"status"`
	Error   string `json:"error"`
	Resumes int    `json:"resumes"`
	Result  *struct {
		BestScript  string  `json:"best_script"`
		BestSeconds float64 `json:"best_seconds"`
		Resumed     bool    `json:"resumed"`
	} `json:"result"`
}

func getJob(t *testing.T, base, id string) *jobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: %d", id, resp.StatusCode)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return &v
}

func waitSucceeded(t *testing.T, base, id string) *jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v := getJob(t, base, id)
		switch v.Status {
		case "succeeded":
			return v
		case "failed", "canceled":
			t.Fatalf("job %s ended %s (error %q)", id, v.Status, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	base, _, stop := startDaemon(t, "-data-dir", dir, "-quiet")

	// Health and readiness at boot.
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
	}

	// Enqueue a job and watch it finish.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"benchmark": "tpch-1", "seed": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d", resp.StatusCode)
	}
	var job jobView
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	done := waitSucceeded(t, base, job.ID)
	if done.Result == nil || done.Result.BestScript == "" {
		t.Fatal("no result on succeeded job")
	}

	// Metrics are exposed.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "service_jobs_succeeded_total") {
		t.Errorf("metrics missing service series:\n%s", buf.String())
	}

	if code := stop(); code != 0 {
		t.Fatalf("daemon exit code %d", code)
	}
}

// TestDaemonRestartResumesCheckpointedJob is the walkthrough from the README
// in test form: a previous daemon process died mid-job (its job record says
// running, and a real mid-run checkpoint sits in the job's directory); the
// next daemon re-adopts the job on boot and resumes it from the checkpoint
// to the same answer an uninterrupted run produces.
func TestDaemonRestartResumesCheckpointedJob(t *testing.T) {
	dir := t.TempDir()
	const jobID = "job-000007"
	jobDir := filepath.Join(dir, jobID)
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}

	// Manufacture the dead process's leavings: crash a checkpointed run at
	// round 2 (the chaos kill point guarantees the checkpoint is durable
	// before the "death"), plus a job.json frozen in the running state.
	db, w, err := lambdatune.Benchmark("tpch-1", lambdatune.Postgres)
	if err != nil {
		t.Fatal(err)
	}
	opts := lambdatune.DefaultOptions()
	opts.Durability.CheckpointDir = jobDir
	opts.Faults = &lambdatune.FaultPlan{Seed: opts.Seed, CrashAfterRound: 2}
	if _, err := db.Tune(w, lambdatune.NewSimulatedLLM(opts.Seed), opts); !errors.Is(err, lambdatune.ErrKilled) {
		t.Fatalf("expected ErrKilled, got %v", err)
	}
	record := fmt.Sprintf(`{"id": %q, "spec": {"benchmark": "tpch-1", "seed": 1}, "status": "running"}`, jobID)
	if err := os.WriteFile(filepath.Join(jobDir, "job.json"), []byte(record), 0o644); err != nil {
		t.Fatal(err)
	}

	// Uninterrupted reference for the identity check.
	db, w, err = lambdatune.Benchmark("tpch-1", lambdatune.Postgres)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Tune(w, lambdatune.NewSimulatedLLM(1), lambdatune.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Boot the daemon on the data dir: it must re-adopt and finish the job.
	base, watch, stop := startDaemon(t, "-data-dir", dir)
	done := waitSucceeded(t, base, jobID)
	if done.Resumes != 1 {
		t.Errorf("resumes = %d, want 1", done.Resumes)
	}
	if done.Result == nil || !done.Result.Resumed {
		t.Fatalf("job did not resume from the checkpoint: %+v", done.Result)
	}
	if done.Result.BestScript != want.BestScript || done.Result.BestSeconds != want.BestSeconds {
		t.Errorf("resumed result differs from uninterrupted run:\n--- want\n%s\n--- got\n%s",
			want.BestScript, done.Result.BestScript)
	}
	if !strings.Contains(watch.String(), "job readopted") || !strings.Contains(watch.String(), "job_id="+jobID) {
		t.Errorf("boot log does not mention re-adoption:\n%s", watch.String())
	}
	if code := stop(); code != 0 {
		t.Fatalf("daemon exit code %d", code)
	}
}

// TestDaemonDrainInterruptsJob: SIGTERM (ctx cancel) while a job streams —
// the daemon flips readiness, interrupts the run, and exits 0; the job
// record survives as interrupted or succeeded (if the run won the race).
func TestDaemonDrainLeavesDurableState(t *testing.T) {
	dir := t.TempDir()
	base, _, stop := startDaemon(t, "-data-dir", dir, "-quiet")

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"benchmark": "tpch-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	var job jobView
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if code := stop(); code != 0 {
		t.Fatalf("daemon exit code %d", code)
	}

	// Whatever state the race reached, it is on disk for the next boot.
	data, err := os.ReadFile(filepath.Join(dir, job.ID, "job.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	switch rec.Status {
	case "succeeded", "interrupted", "queued":
	default:
		t.Fatalf("persisted status after drain = %q", rec.Status)
	}
}

// TestDaemonJSONLogFormat boots the daemon with -log-format json and checks
// that every log line is a JSON object and that job lifecycle lines carry the
// identity keys (job_id/tenant/run_id) the observability plane promises.
func TestDaemonJSONLogFormat(t *testing.T) {
	dir := t.TempDir()
	base, watch, stop := startDaemon(t, "-data-dir", dir, "-log-format", "json")

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"benchmark": "tpch-1", "seed": 1, "tenant": "acme"}`))
	if err != nil {
		t.Fatal(err)
	}
	var job jobView
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitSucceeded(t, base, job.ID)
	if code := stop(); code != 0 {
		t.Fatalf("daemon exit code %d", code)
	}

	finished := false
	for _, line := range strings.Split(strings.TrimSpace(watch.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		if rec["msg"] == "job finished" && rec["job_id"] == job.ID {
			finished = true
			if rec["tenant"] != "acme" {
				t.Errorf("job finished line tenant = %v, want acme: %s", rec["tenant"], line)
			}
			if rid, _ := rec["run_id"].(string); rid == "" {
				t.Errorf("job finished line has no run_id: %s", line)
			}
		}
	}
	if !finished {
		t.Errorf("no 'job finished' line for %s in:\n%s", job.ID, watch.String())
	}
}

// TestDaemonLogFlagValidation: bad -log-format / -log-level values are usage
// errors caught before the daemon touches the data dir.
func TestDaemonLogFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-data-dir", t.TempDir(), "-log-format", "yaml"},
		{"-data-dir", t.TempDir(), "-log-level", "loud"},
	} {
		var out bytes.Buffer
		if code := run(context.Background(), args, &out, &out); code != 2 {
			t.Errorf("run(%v) exit %d, want 2 (output: %s)", args, code, out.String())
		}
		if !strings.Contains(out.String(), "invalid -log-") {
			t.Errorf("run(%v) missing usage error: %s", args, out.String())
		}
	}
}

func TestDaemonRequiresDataDir(t *testing.T) {
	var out bytes.Buffer
	if code := run(context.Background(), nil, &out, &out); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(out.String(), "-data-dir is required") {
		t.Errorf("missing usage error: %s", out.String())
	}
}
