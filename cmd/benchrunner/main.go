// Command benchrunner regenerates the paper's evaluation artifacts (every
// table and figure of §6) on the simulated substrate and prints them.
//
// Usage:
//
//	benchrunner -exp all
//	benchrunner -exp table3 -trials 3
//	benchrunner -exp fig6
//
// Experiment identifiers follow DESIGN.md's per-experiment index.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"lambdatune/internal/bench"
	"lambdatune/internal/bench/jobstudy"
	"lambdatune/internal/bench/obsstudy"
	"lambdatune/internal/bench/runtimestudy"
)

// writeProfile dumps the named runtime/pprof profile (mutex, block) to path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

func main() {
	var (
		exp          = flag.String("exp", "all", "experiment: table3 table4 table5 fig3 fig4 fig5 fig6 fig7 fig8 transfer outliers robustness scaling race runtime jobs obsoverhead all")
		trials       = flag.Int("trials", 3, "repetitions per scenario (the paper uses 3)")
		seed         = flag.Int64("seed", 1, "base random seed")
		burn         = flag.Duration("burn", 500*time.Microsecond, "real CPU burned per simulated query execution in the scaling study")
		csvDir       = flag.String("csv", "", "also write machine-readable CSVs to this directory")
		charts       = flag.Bool("charts", false, "render convergence figures as ASCII charts")
		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		mutexProfile = flag.String("mutexprofile", "", "write a pprof mutex-contention profile at exit to this file")
		blockProfile = flag.String("blockprofile", "", "write a pprof blocking profile at exit to this file")
		traceDir     = flag.String("trace-dir", "", "write one JSONL span trace per λ-Tune run into this directory (inspect with `lambdatune trace-summary`)")
		raceJSON     = flag.String("race-json", "", "also write the E14 racing study as machine-readable JSON to this file")
		rtJSON       = flag.String("runtime-json", "", "also write the E15 shared-runtime study as machine-readable JSON to this file")
		jobsJSON     = flag.String("jobs-json", "", "also write the E16 job-throughput study as machine-readable JSON to this file")
		jobCount     = flag.Int("jobs", jobstudy.Jobs, "job count for the E16 job-throughput study and the E17 overhead study")
		obsJSON      = flag.String("obs-json", "", "also write the E17 observability-overhead study as machine-readable JSON to this file")
	)
	flag.Parse()

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		bench.SetTraceDir(*traceDir)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	// The contention profiles sample every event (rate/fraction 1): these are
	// offline benchmark runs, so fidelity beats sampling overhead.
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexProfile)
	}
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockProfile)
	}

	r := bench.NewRunner()
	run := func(name string, f func() (string, error)) {
		start := time.Now()
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("### %s (generated in %.1fs real time)\n\n%s\n", name, time.Since(start).Seconds(), out)
	}

	all := *exp == "all"
	if all || *exp == "table3" {
		run("Table 3 — scaled cost of best configuration per system", func() (string, error) {
			rows, err := bench.Table3(r, *seed, *trials)
			if err != nil {
				return "", err
			}
			if *csvDir != "" {
				if err := bench.ExportTable3CSV(*csvDir, rows); err != nil {
					return "", err
				}
			}
			return bench.RenderTable3(rows), nil
		})
	}
	if all || *exp == "table4" {
		run("Table 4 — configurations evaluated per baseline (Postgres)", func() (string, error) {
			rows, err := bench.Table4(r, *seed, *trials)
			if err != nil {
				return "", err
			}
			if *csvDir != "" {
				if err := bench.ExportTable4CSV(*csvDir, rows); err != nil {
					return "", err
				}
			}
			return bench.RenderTable4(rows), nil
		})
	}
	if all || *exp == "table5" {
		run("Table 5 — best λ-Tune configuration for TPC-H 1GB (Postgres)", func() (string, error) {
			t5, err := bench.BuildTable5(*seed)
			if err != nil {
				return "", err
			}
			return bench.RenderTable5(t5), nil
		})
	}
	renderFigs := func(figs []bench.FigureConvergence) string {
		if !*charts {
			return bench.RenderConvergence(figs)
		}
		var out string
		for _, fc := range figs {
			out += bench.AsciiChart(fc, 72)
		}
		return out
	}
	if all || *exp == "fig3" {
		run("Figure 3 — convergence, pure parameter tuning (initial indexes)", func() (string, error) {
			figs, err := bench.Convergence(r, *seed, *trials, true)
			if err != nil {
				return "", err
			}
			if *csvDir != "" {
				if err := bench.ExportConvergenceCSV(*csvDir, "figure3", figs); err != nil {
					return "", err
				}
			}
			return renderFigs(figs), nil
		})
	}
	if all || *exp == "fig4" {
		run("Figure 4 — convergence, index creation allowed (no initial indexes)", func() (string, error) {
			figs, err := bench.Convergence(r, *seed, *trials, false)
			if err != nil {
				return "", err
			}
			if *csvDir != "" {
				if err := bench.ExportConvergenceCSV(*csvDir, "figure4", figs); err != nil {
					return "", err
				}
			}
			return renderFigs(figs), nil
		})
	}
	if all || *exp == "fig5" {
		run("Figure 5 — per-query times, λ-Tune vs default (TPC-H 1GB, Postgres)", func() (string, error) {
			rows, err := bench.Figure5(*seed)
			if err != nil {
				return "", err
			}
			if *csvDir != "" {
				if err := bench.ExportFigure5CSV(*csvDir, rows); err != nil {
					return "", err
				}
			}
			return bench.RenderFigure5(rows), nil
		})
	}
	if all || *exp == "fig6" {
		run("Figure 6 — component ablation (JOB, Postgres, no indexes)", func() (string, error) {
			rows, err := bench.Figure6(*seed)
			if err != nil {
				return "", err
			}
			return bench.RenderFigure6(rows), nil
		})
	}
	if all || *exp == "fig7" {
		run("Figure 7 — compressor token-budget study (JOB, Postgres)", func() (string, error) {
			rows, err := bench.Figure7(*seed)
			if err != nil {
				return "", err
			}
			if *csvDir != "" {
				if err := bench.ExportFigure7CSV(*csvDir, rows); err != nil {
					return "", err
				}
			}
			return bench.RenderFigure7(rows), nil
		})
	}
	if all || *exp == "fig8" {
		run("Figure 8 — index recommendation tools (Postgres)", func() (string, error) {
			rows, err := bench.Figure8(*seed)
			if err != nil {
				return "", err
			}
			return bench.RenderFigure8(rows), nil
		})
	}
	if all || *exp == "transfer" {
		run("Parameter transfer study (§6.3) — winning configs across benchmarks", func() (string, error) {
			s, err := bench.Transfer(*seed)
			if err != nil {
				return "", err
			}
			return bench.RenderTransfer(s), nil
		})
	}
	if all || *exp == "outliers" {
		run("LLM outlier study (§6.3) — 15 samples, TPC-H 1GB (Postgres)", func() (string, error) {
			o, err := bench.Outliers(*seed)
			if err != nil {
				return "", err
			}
			return bench.RenderOutliers(o), nil
		})
	}
	if all || *exp == "robustness" {
		run("Robustness study (E12) — injected LLM/engine faults, resilient pipeline", func() (string, error) {
			rows, err := bench.Robustness(*seed)
			if err != nil {
				return "", err
			}
			return bench.RenderRobustness(rows), nil
		})
	}
	if all || *exp == "scaling" {
		run("Scaling study (E13) — parallel candidate evaluation, 1..8 workers", func() (string, error) {
			rows, err := bench.Scaling(*seed, *burn)
			if err != nil {
				return "", err
			}
			return bench.RenderScaling(rows), nil
		})
	}
	if all || *exp == "race" {
		run("Racing study (E14) — full vs successive-halving candidate evaluation", func() (string, error) {
			s, err := bench.Race(*seed)
			if err != nil {
				return "", err
			}
			if *raceJSON != "" {
				if err := bench.ExportRaceJSON(*raceJSON, s); err != nil {
					return "", err
				}
			}
			return bench.RenderRace(s), nil
		})
	}
	if all || *exp == "jobs" {
		run("Job-throughput study (E16) — daemon-scale stream, legacy vs segmented-LRU lifecycle", func() (string, error) {
			s, err := jobstudy.Run(*seed, *jobCount)
			if err != nil {
				return "", err
			}
			if *jobsJSON != "" {
				if err := jobstudy.ExportJSON(*jobsJSON, s); err != nil {
					return "", err
				}
			}
			return jobstudy.Render(s), nil
		})
	}
	if all || *exp == "obsoverhead" {
		run("Observability-overhead study (E17) — telemetry dark vs live on the E16 stream", func() (string, error) {
			s, err := obsstudy.Run(*seed, *jobCount)
			if err != nil {
				return "", err
			}
			if *obsJSON != "" {
				if err := obsstudy.ExportJSON(*obsJSON, s); err != nil {
					return "", err
				}
			}
			return obsstudy.Render(s), nil
		})
	}
	if all || *exp == "runtime" {
		run("Shared-runtime study (E15) — cross-job memo reuse vs isolated runs", func() (string, error) {
			s, err := runtimestudy.Run(*seed, runtimestudy.Jobs)
			if err != nil {
				return "", err
			}
			if *rtJSON != "" {
				if err := runtimestudy.ExportJSON(*rtJSON, s); err != nil {
					return "", err
				}
			}
			return runtimestudy.Render(s), nil
		})
	}
	if !all {
		switch *exp {
		case "table3", "table4", "table5", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "transfer", "outliers", "robustness", "scaling", "race", "runtime", "jobs", "obsoverhead":
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
	}
}
