package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixture = "../../internal/obs/testdata/fixture.jsonl"

// TestTraceSummaryFixture pins the subcommand's output on the checked-in
// fixture trace: schema check passes and the per-phase table carries the
// fixture's known costs.
func TestTraceSummaryFixture(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := traceSummary([]string{"-check", fixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"trace ok: 12 spans",
		"llm",
		"120.00000",
		"eval",
		"69.50000",
		"index-build",
		"spans=12 events=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output is missing %q:\n%s", want, out)
		}
	}
	// The llm phase dominates the fixture, so it leads the table.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 || !strings.HasPrefix(lines[2], "llm") {
		t.Errorf("llm is not the top phase:\n%s", out)
	}
}

// TestTraceSummaryErrors: bad usage and invalid traces exit non-zero.
func TestTraceSummaryErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := traceSummary(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no-args exit %d, want 2", code)
	}
	if code := traceSummary([]string{"/no/such/trace.jsonl"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing-file exit %d, want 1", code)
	}

	// A structurally broken trace (child precedes parent) fails -check.
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	lines := `{"id":1,"parent":2,"name":"child","virt_start":0,"virt_end":1}
{"id":2,"parent":0,"name":"run","virt_start":0,"virt_end":1}
`
	if err := os.WriteFile(bad, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := traceSummary([]string{"-check", bad}, &stdout, &stderr); code != 1 {
		t.Errorf("invalid-trace exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "invalid trace") {
		t.Errorf("stderr does not report the schema violation: %s", stderr.String())
	}
}
