package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixture = "../../internal/obs/testdata/fixture.jsonl"

// TestTraceSummaryFixture pins the subcommand's output on the checked-in
// fixture trace: schema check passes and the per-phase table carries the
// fixture's known costs.
func TestTraceSummaryFixture(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := traceSummary([]string{"-check", fixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"trace ok: 12 spans",
		"llm",
		"120.00000",
		"eval",
		"69.50000",
		"index-build",
		"spans=12 events=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output is missing %q:\n%s", want, out)
		}
	}
	// The llm phase dominates the fixture, so it leads the table.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 || !strings.HasPrefix(lines[2], "llm") {
		t.Errorf("llm is not the top phase:\n%s", out)
	}
}

// TestTraceSummaryErrors: bad usage and invalid traces exit non-zero.
func TestTraceSummaryErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := traceSummary(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no-args exit %d, want 2", code)
	}
	if code := traceSummary([]string{"/no/such/trace.jsonl"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing-file exit %d, want 1", code)
	}

	// A structurally broken trace (child precedes parent) fails -check.
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	lines := `{"id":1,"parent":2,"name":"child","virt_start":0,"virt_end":1}
{"id":2,"parent":0,"name":"run","virt_start":0,"virt_end":1}
`
	if err := os.WriteFile(bad, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := traceSummary([]string{"-check", bad}, &stdout, &stderr); code != 1 {
		t.Errorf("invalid-trace exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "invalid trace") {
		t.Errorf("stderr does not report the schema violation: %s", stderr.String())
	}
}

// TestTraceSummaryURL: the subcommand accepts an http(s) source and
// summarizes the fetched JSONL exactly as it would a local file; a non-200
// response surfaces as an error with the server's body.
func TestTraceSummaryURL(t *testing.T) {
	raw, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/jobs/job-1/trace":
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Write(raw)
		default:
			http.Error(w, `{"error":{"code":"not_found"}}`, http.StatusNotFound)
		}
	}))
	defer srv.Close()

	var stdout, stderr bytes.Buffer
	if code := traceSummary([]string{"-check", srv.URL + "/v1/jobs/job-1/trace"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "trace ok: 12 spans") {
		t.Errorf("fetched trace did not validate:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := traceSummary([]string{srv.URL + "/v1/jobs/nope/trace"}, &stdout, &stderr); code != 1 {
		t.Errorf("404 source exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "not_found") {
		t.Errorf("stderr does not carry the server's error body: %s", stderr.String())
	}
}

// TestRunKillAndResume drives the full CLI through a chaos crash and a
// resume: the first invocation dies at the checkpoint closing round 2, the
// second picks the run up from the durable checkpoint and must land on the
// same configuration as an uninterrupted run.
func TestRunKillAndResume(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-benchmark", "tpch-1", "-seed", "1", "-checkpoint-dir", dir}

	var out, errb bytes.Buffer
	if code := run(append(base, "-kill-after-round", "2"), &out, &errb); code != killedExitCode {
		t.Fatalf("kill run exit %d, want %d (stderr: %s)", code, killedExitCode, errb.String())
	}
	if !strings.Contains(errb.String(), "rerun with -resume") {
		t.Errorf("kill message missing resume hint: %s", errb.String())
	}

	// An uninterrupted reference run (no checkpointing) for comparison.
	var ref bytes.Buffer
	if code := run([]string{"-benchmark", "tpch-1", "-seed", "1"}, &ref, &errb); code != 0 {
		t.Fatalf("reference run exit %d: %s", code, errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run(append(base, "-resume"), &out, &errb); code != 0 {
		t.Fatalf("resume exit %d (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "resumed from durable checkpoint") {
		t.Errorf("resume banner missing:\n%s", out.String())
	}
	// Same winning script and same speedup line, byte for byte.
	extract := func(s, anchor string) string {
		i := strings.Index(s, anchor)
		if i < 0 {
			t.Fatalf("output missing %q:\n%s", anchor, s)
		}
		return s[i:]
	}
	refTail := extract(ref.String(), "Best configuration")
	gotTail := extract(out.String(), "Best configuration")
	if refTail != gotTail {
		t.Errorf("resumed output differs from uninterrupted run:\n--- want\n%s\n--- got\n%s", refTail, gotTail)
	}
}

// TestRunResumeWithoutCheckpointDir is a usage error: the CLI fails fast
// with exit 2 and usage text, before any tuning work starts.
func TestRunResumeWithoutCheckpointDir(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-resume"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "-resume requires -checkpoint-dir") {
		t.Errorf("stderr: %s", errb.String())
	}
	if !strings.Contains(errb.String(), "Usage of lambdatune") {
		t.Errorf("usage text missing from stderr: %s", errb.String())
	}
}

// TestRunUnknownStrategy: a bad -strategy value is a usage error.
func TestRunUnknownStrategy(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-strategy", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), `unknown strategy "bogus"`) {
		t.Errorf("stderr: %s", errb.String())
	}
}

// TestRunMetricsServerShutsDown verifies the -metrics-addr listener is
// gracefully shut down when the run ends: the port must be bindable again
// immediately after run() returns.
func TestRunMetricsServerShutsDown(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-benchmark", "tpch-1", "-metrics-addr", "127.0.0.1:0"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "serving metrics on") {
		t.Errorf("metrics banner missing: %s", errb.String())
	}
}
