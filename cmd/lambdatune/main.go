// Command lambdatune tunes a workload on the simulated DBMS and prints the
// winning configuration script.
//
// Usage:
//
//	lambdatune -benchmark tpch-1 -dbms postgres -samples 5 -seed 1
//	lambdatune -schema schema.json -queries ./sql/     # custom workload
//	lambdatune -trace run.jsonl -progress -metrics-addr :9090
//	lambdatune -checkpoint-dir ./ckpt                  # crash-recoverable run
//	lambdatune -checkpoint-dir ./ckpt -resume          # continue after a crash
//	lambdatune trace-summary -check run.jsonl          # per-phase cost table
//	lambdatune trace-summary http://127.0.0.1:8080/v1/jobs/job-000001/trace
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"lambdatune"
	"lambdatune/internal/obs"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "trace-summary" {
		os.Exit(traceSummary(os.Args[2:], os.Stdout, os.Stderr))
	}
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// killedExitCode is the exit status of a run that died at a chaos kill point
// (the checkpoint is durable; rerun with -resume).
const killedExitCode = 3

// run is the tuning entrypoint, separated from main so tests can drive the
// full CLI — flags, checkpointing, kill points, resume — in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lambdatune", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchmark = fs.String("benchmark", "tpch-1", "built-in workload: "+strings.Join(lambdatune.BenchmarkNames(), ", "))
		schema    = fs.String("schema", "", "schema statistics JSON for a custom workload (see LoadSchema)")
		queries   = fs.String("queries", "", "directory of .sql files for a custom workload (requires -schema)")
		dbms      = fs.String("dbms", "postgres", "target system: postgres or mysql")
		samples   = fs.Int("samples", 5, "number of LLM configuration samples (k)")
		budget    = fs.Int("token-budget", 0, "prompt token budget for the workload representation (0 = model limit)")
		seed      = fs.Int64("seed", 1, "random seed for the simulated LLM")
		rag       = fs.Bool("rag", false, "augment the LLM with the bundled tuning-guide corpus (RAG)")
		temp      = fs.Float64("temperature", 0.7, "LLM sampling temperature (0 = greedy decoding)")
		llmFault  = fs.Float64("llm-fault-rate", 0, "injected LLM fault probability per call, 0..1")
		engFault  = fs.Float64("engine-fault-rate", 0, "injected engine fault probability per operation, 0..1")
		retries   = fs.Int("llm-retries", 3, "LLM retry attempts with exponential backoff (-1 disables)")
		breaker   = fs.Int("llm-breaker", 4, "consecutive LLM failures that trip the circuit breaker (-1 disables)")
		parallel  = fs.Int("parallel", 1, "concurrent evaluation workers (simulated DBMS replicas); selection results are identical for any value")
		strategy  = fs.String("strategy", "full", "candidate evaluation strategy: full (paper-faithful) or racing (successive halving with a cost surrogate)")
		instr     = fs.Bool("instrument", false, "count and time every backend call, printing a per-surface report after tuning")
		plancache = fs.Bool("plancache", true, "memoize simulated query plans (host-CPU optimization; results are identical either way)")
		verbose   = fs.Bool("v", false, "print progress events")
		traceOut  = fs.String("trace", "", "write the run's span tree to this JSONL file (inspect with `lambdatune trace-summary`)")
		progress  = fs.Bool("progress", false, "stream live round/candidate narration to stderr (virtual timestamps)")
		metrics   = fs.String("metrics-addr", "", "serve Prometheus metrics on this address (e.g. :9090) while the run lasts")
		ckptDir   = fs.String("checkpoint-dir", "", "durably checkpoint the run's resumable state into this directory (crash recovery)")
		resume    = fs.Bool("resume", false, "resume the run from the latest checkpoint in -checkpoint-dir")
		killRound = fs.Int("kill-after-round", 0, "chaos: crash after the checkpoint closing selection round N (requires -checkpoint-dir)")
		killSaves = fs.Int("kill-after-saves", 0, "chaos: crash after the Nth durable checkpoint save (requires -checkpoint-dir)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(stderr, "-resume requires -checkpoint-dir (there is no checkpoint to resume from)")
		fs.Usage()
		return 2
	}

	evalStrategy := lambdatune.FullEvaluation
	switch strings.ToLower(*strategy) {
	case "full", "":
	case "racing", "race":
		evalStrategy = lambdatune.Racing
	default:
		fmt.Fprintf(stderr, "unknown strategy %q (have: full, racing)\n", *strategy)
		return 2
	}

	flavor := lambdatune.Postgres
	switch strings.ToLower(*dbms) {
	case "postgres", "pg", "postgresql":
	case "mysql", "ms":
		flavor = lambdatune.MySQL
	default:
		fmt.Fprintf(stderr, "unknown dbms %q\n", *dbms)
		return 2
	}

	// One runtime hosts the run; for this one-shot CLI it behaves exactly
	// like the standalone path, and keeps the CLI on the same pipeline the
	// lambdatuned service uses.
	rt := lambdatune.NewRuntime(lambdatune.RuntimeOptions{})
	defer rt.Close()

	var (
		db  *lambdatune.Database
		w   *lambdatune.Workload
		err error
	)
	if *schema != "" || *queries != "" {
		if *schema == "" || *queries == "" {
			fmt.Fprintln(stderr, "-schema and -queries must be used together")
			return 2
		}
		name, tables, lerr := lambdatune.LoadSchema(*schema)
		if lerr != nil {
			fmt.Fprintln(stderr, lerr)
			return 2
		}
		db, err = lambdatune.NewDatabase(flavor, name, tables, lambdatune.DefaultHardware)
		if err == nil {
			w, err = lambdatune.LoadQueriesDir(*queries)
		}
	} else {
		db, w, err = rt.Benchmark(*benchmark, flavor)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	opts := lambdatune.DefaultOptions()
	opts.Samples = *samples
	opts.TokenBudget = *budget
	opts.Seed = *seed
	opts.Temperature = *temp
	opts.Evaluation.Parallelism = *parallel
	opts.Evaluation.Strategy = evalStrategy
	opts.Durability.CheckpointDir = *ckptDir
	opts.Durability.Resume = *resume
	if *llmFault > 0 || *engFault > 0 {
		opts.Faults = &lambdatune.FaultPlan{LLMRate: *llmFault, EngineRate: *engFault, Seed: *seed}
		opts.Resilience = &lambdatune.ResilienceOptions{MaxRetries: *retries, BreakerThreshold: *breaker}
	}
	if *killRound > 0 || *killSaves > 0 {
		if opts.Faults == nil {
			opts.Faults = &lambdatune.FaultPlan{Seed: *seed}
		}
		opts.Faults.CrashAfterRound = *killRound
		opts.Faults.CrashAfterSaves = *killSaves
	}

	db.SetPlanCache(*plancache)
	if *instr {
		db.Instrument()
	}

	var trace *lambdatune.Trace
	if *traceOut != "" {
		trace = lambdatune.NewTrace()
		opts.Observability.Trace = trace
	}
	if *progress {
		opts.Observability.Progress = stderr
	}
	var reg *lambdatune.Metrics
	if *metrics != "" {
		reg = lambdatune.NewMetrics()
		opts.Observability.Metrics = reg
		ms := obs.NewMetricsServer(reg.Registry(), *metrics)
		if err := ms.Start(func(err error) { fmt.Fprintln(stderr, "metrics server:", err) }); err != nil {
			fmt.Fprintln(stderr, "metrics server:", err)
			return 2
		}
		// Graceful shutdown on every exit path: in-flight scrapes finish and
		// the port is released before the process ends.
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = ms.Shutdown(ctx)
		}()
		fmt.Fprintf(stderr, "serving metrics on %s/metrics\n", ms.Addr())
	}

	client := lambdatune.NewSimulatedLLM(*seed)
	if *rag {
		client = lambdatune.WithRetrieval(client, nil)
	}
	fmt.Fprintf(stdout, "Tuning %s (%d queries) on %s with %s...\n", w.Name(), w.Len(), *dbms, client.Name())
	// Ctrl-C cancels the run cleanly: LLM calls abort and evaluation workers
	// stop within one query execution.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := rt.TuneContext(ctx, db, w, client, opts)
	if trace != nil {
		// The trace is written even when the run failed: whatever spans were
		// recorded up to the error are worth inspecting.
		if werr := trace.WriteFile(*traceOut); werr != nil {
			fmt.Fprintln(stderr, "trace export:", werr)
		} else {
			fmt.Fprintf(stderr, "trace: %d spans -> %s\n", trace.Len(), *traceOut)
		}
	}
	if errors.Is(err, lambdatune.ErrKilled) {
		fmt.Fprintf(stderr, "killed at chaos kill point; checkpoint is durable in %s — rerun with -resume\n", *ckptDir)
		return killedExitCode
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	if res.Resumed {
		fmt.Fprintln(stdout, "resumed from durable checkpoint")
		if res.CheckpointFellBack {
			fmt.Fprintln(stdout, "(live checkpoint was corrupt; fell back to the previous generation)")
		}
	}
	fmt.Fprintf(stdout, "\nBest configuration (%d candidates, %d prompt tokens):\n\n%s\n",
		res.Candidates, res.PromptTokens, res.BestScript)
	fmt.Fprintf(stdout, "workload: %.1fs default → %.1fs tuned (%.1fx speedup)\n",
		res.DefaultSeconds, res.BestSeconds, res.Speedup())
	fmt.Fprintf(stdout, "tuning cost: %.1fs simulated (bounded by Theorem 4.3)\n", res.TuningSeconds)
	if res.Faults.Any() {
		fmt.Fprintf(stdout, "faults survived: %s\n", res.Faults)
	}
	if *instr {
		fmt.Fprintf(stdout, "\n%s", db.BackendReport())
	}
	if trace != nil {
		fmt.Fprintf(stdout, "\nphase breakdown:\n%s", trace.SummaryTable())
	}
	if *verbose {
		fmt.Fprintln(stdout, "\nprogress:")
		for _, p := range res.Progress {
			fmt.Fprintf(stdout, "  %8.1fs → best %.1fs\n", p.TuningSeconds, p.BestSeconds)
		}
		for _, wmsg := range res.Warnings {
			fmt.Fprintln(stdout, "warning:", wmsg)
		}
	}
	return 0
}

// traceSummary implements the `lambdatune trace-summary [-check] <source>`
// subcommand: it reads an exported trace and prints the per-phase cost
// breakdown; -check first validates the file against the span schema. The
// source is either a local JSONL file or an http(s) URL — typically a
// daemon's /v1/jobs/{id}/trace endpoint.
func traceSummary(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trace-summary", flag.ContinueOnError)
	fs.SetOutput(stderr)
	check := fs.Bool("check", false, "validate the trace against the span schema before summarizing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: lambdatune trace-summary [-check] <trace.jsonl | http://host/v1/jobs/ID/trace>")
		return 2
	}
	recs, err := readTrace(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *check {
		if err := obs.ValidateRecords(recs); err != nil {
			fmt.Fprintf(stderr, "invalid trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "trace ok: %d spans\n", len(recs))
	}
	fmt.Fprint(stdout, obs.SummaryTable(obs.Summarize(recs)))
	return 0
}

// readTrace loads span records from a local JSONL file or, when source is an
// http(s) URL, from a trace endpoint over the network.
func readTrace(source string) ([]obs.SpanRecord, error) {
	if !strings.HasPrefix(source, "http://") && !strings.HasPrefix(source, "https://") {
		return obs.ReadFile(source)
	}
	resp, err := http.Get(source)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("GET %s: %s: %s", source, resp.Status, strings.TrimSpace(string(body)))
	}
	return obs.ReadJSONL(resp.Body)
}
