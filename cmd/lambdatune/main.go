// Command lambdatune tunes a workload on the simulated DBMS and prints the
// winning configuration script.
//
// Usage:
//
//	lambdatune -benchmark tpch-1 -dbms postgres -samples 5 -seed 1
//	lambdatune -schema schema.json -queries ./sql/     # custom workload
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"lambdatune"
)

func main() {
	var (
		benchmark = flag.String("benchmark", "tpch-1", "built-in workload: "+strings.Join(lambdatune.BenchmarkNames(), ", "))
		schema    = flag.String("schema", "", "schema statistics JSON for a custom workload (see LoadSchema)")
		queries   = flag.String("queries", "", "directory of .sql files for a custom workload (requires -schema)")
		dbms      = flag.String("dbms", "postgres", "target system: postgres or mysql")
		samples   = flag.Int("samples", 5, "number of LLM configuration samples (k)")
		budget    = flag.Int("token-budget", 0, "prompt token budget for the workload representation (0 = model limit)")
		seed      = flag.Int64("seed", 1, "random seed for the simulated LLM")
		rag       = flag.Bool("rag", false, "augment the LLM with the bundled tuning-guide corpus (RAG)")
		temp      = flag.Float64("temperature", 0.7, "LLM sampling temperature (0 = greedy decoding)")
		llmFault  = flag.Float64("llm-fault-rate", 0, "injected LLM fault probability per call, 0..1")
		engFault  = flag.Float64("engine-fault-rate", 0, "injected engine fault probability per operation, 0..1")
		retries   = flag.Int("llm-retries", 3, "LLM retry attempts with exponential backoff (-1 disables)")
		breaker   = flag.Int("llm-breaker", 4, "consecutive LLM failures that trip the circuit breaker (-1 disables)")
		parallel  = flag.Int("parallel", 1, "concurrent evaluation workers (simulated DBMS replicas); selection results are identical for any value")
		instr     = flag.Bool("instrument", false, "count and time every backend call, printing a per-surface report after tuning")
		plancache = flag.Bool("plancache", true, "memoize simulated query plans (host-CPU optimization; results are identical either way)")
		verbose   = flag.Bool("v", false, "print progress events")
	)
	flag.Parse()

	flavor := lambdatune.Postgres
	switch strings.ToLower(*dbms) {
	case "postgres", "pg", "postgresql":
	case "mysql", "ms":
		flavor = lambdatune.MySQL
	default:
		fmt.Fprintf(os.Stderr, "unknown dbms %q\n", *dbms)
		os.Exit(2)
	}

	var (
		db  *lambdatune.Database
		w   *lambdatune.Workload
		err error
	)
	if *schema != "" || *queries != "" {
		if *schema == "" || *queries == "" {
			fmt.Fprintln(os.Stderr, "-schema and -queries must be used together")
			os.Exit(2)
		}
		name, tables, lerr := lambdatune.LoadSchema(*schema)
		if lerr != nil {
			fmt.Fprintln(os.Stderr, lerr)
			os.Exit(2)
		}
		db, err = lambdatune.NewDatabase(flavor, name, tables, lambdatune.DefaultHardware)
		if err == nil {
			w, err = lambdatune.LoadQueriesDir(*queries)
		}
	} else {
		db, w, err = lambdatune.Benchmark(*benchmark, flavor)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opts := lambdatune.DefaultOptions()
	opts.Samples = *samples
	opts.TokenBudget = *budget
	opts.Seed = *seed
	opts.Temperature = *temp
	opts.Parallelism = *parallel
	if *llmFault > 0 || *engFault > 0 {
		opts.Faults = &lambdatune.FaultPlan{LLMRate: *llmFault, EngineRate: *engFault, Seed: *seed}
		opts.Resilience = &lambdatune.ResilienceOptions{MaxRetries: *retries, BreakerThreshold: *breaker}
	}

	db.SetPlanCache(*plancache)
	if *instr {
		db.Instrument()
	}

	client := lambdatune.NewSimulatedLLM(*seed)
	if *rag {
		client = lambdatune.WithRetrieval(client, nil)
	}
	fmt.Printf("Tuning %s (%d queries) on %s with %s...\n", w.Name(), w.Len(), *dbms, client.Name())
	// Ctrl-C cancels the run cleanly: LLM calls abort and evaluation workers
	// stop within one query execution.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := db.TuneContext(ctx, w, client, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("\nBest configuration (%d candidates, %d prompt tokens):\n\n%s\n",
		res.Candidates, res.PromptTokens, res.BestScript)
	fmt.Printf("workload: %.1fs default → %.1fs tuned (%.1fx speedup)\n",
		res.DefaultSeconds, res.BestSeconds, res.Speedup())
	fmt.Printf("tuning cost: %.1fs simulated (bounded by Theorem 4.3)\n", res.TuningSeconds)
	if res.Faults.Any() {
		fmt.Printf("faults survived: %s\n", res.Faults)
	}
	if *instr {
		fmt.Printf("\n%s", db.BackendReport())
	}
	if *verbose {
		fmt.Println("\nprogress:")
		for _, p := range res.Progress {
			fmt.Printf("  %8.1fs → best %.1fs\n", p.TuningSeconds, p.BestSeconds)
		}
		for _, wmsg := range res.Warnings {
			fmt.Println("warning:", wmsg)
		}
	}
}
