// Command lambdatune tunes a workload on the simulated DBMS and prints the
// winning configuration script.
//
// Usage:
//
//	lambdatune -benchmark tpch-1 -dbms postgres -samples 5 -seed 1
//	lambdatune -schema schema.json -queries ./sql/     # custom workload
//	lambdatune -trace run.jsonl -progress -metrics-addr :9090
//	lambdatune trace-summary -check run.jsonl          # per-phase cost table
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"

	"lambdatune"
	"lambdatune/internal/obs"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "trace-summary" {
		os.Exit(traceSummary(os.Args[2:], os.Stdout, os.Stderr))
	}
	var (
		benchmark = flag.String("benchmark", "tpch-1", "built-in workload: "+strings.Join(lambdatune.BenchmarkNames(), ", "))
		schema    = flag.String("schema", "", "schema statistics JSON for a custom workload (see LoadSchema)")
		queries   = flag.String("queries", "", "directory of .sql files for a custom workload (requires -schema)")
		dbms      = flag.String("dbms", "postgres", "target system: postgres or mysql")
		samples   = flag.Int("samples", 5, "number of LLM configuration samples (k)")
		budget    = flag.Int("token-budget", 0, "prompt token budget for the workload representation (0 = model limit)")
		seed      = flag.Int64("seed", 1, "random seed for the simulated LLM")
		rag       = flag.Bool("rag", false, "augment the LLM with the bundled tuning-guide corpus (RAG)")
		temp      = flag.Float64("temperature", 0.7, "LLM sampling temperature (0 = greedy decoding)")
		llmFault  = flag.Float64("llm-fault-rate", 0, "injected LLM fault probability per call, 0..1")
		engFault  = flag.Float64("engine-fault-rate", 0, "injected engine fault probability per operation, 0..1")
		retries   = flag.Int("llm-retries", 3, "LLM retry attempts with exponential backoff (-1 disables)")
		breaker   = flag.Int("llm-breaker", 4, "consecutive LLM failures that trip the circuit breaker (-1 disables)")
		parallel  = flag.Int("parallel", 1, "concurrent evaluation workers (simulated DBMS replicas); selection results are identical for any value")
		instr     = flag.Bool("instrument", false, "count and time every backend call, printing a per-surface report after tuning")
		plancache = flag.Bool("plancache", true, "memoize simulated query plans (host-CPU optimization; results are identical either way)")
		verbose   = flag.Bool("v", false, "print progress events")
		traceOut  = flag.String("trace", "", "write the run's span tree to this JSONL file (inspect with `lambdatune trace-summary`)")
		progress  = flag.Bool("progress", false, "stream live round/candidate narration to stderr (virtual timestamps)")
		metrics   = flag.String("metrics-addr", "", "serve Prometheus metrics on this address (e.g. :9090) while the run lasts")
	)
	flag.Parse()

	flavor := lambdatune.Postgres
	switch strings.ToLower(*dbms) {
	case "postgres", "pg", "postgresql":
	case "mysql", "ms":
		flavor = lambdatune.MySQL
	default:
		fmt.Fprintf(os.Stderr, "unknown dbms %q\n", *dbms)
		os.Exit(2)
	}

	var (
		db  *lambdatune.Database
		w   *lambdatune.Workload
		err error
	)
	if *schema != "" || *queries != "" {
		if *schema == "" || *queries == "" {
			fmt.Fprintln(os.Stderr, "-schema and -queries must be used together")
			os.Exit(2)
		}
		name, tables, lerr := lambdatune.LoadSchema(*schema)
		if lerr != nil {
			fmt.Fprintln(os.Stderr, lerr)
			os.Exit(2)
		}
		db, err = lambdatune.NewDatabase(flavor, name, tables, lambdatune.DefaultHardware)
		if err == nil {
			w, err = lambdatune.LoadQueriesDir(*queries)
		}
	} else {
		db, w, err = lambdatune.Benchmark(*benchmark, flavor)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opts := lambdatune.DefaultOptions()
	opts.Samples = *samples
	opts.TokenBudget = *budget
	opts.Seed = *seed
	opts.Temperature = *temp
	opts.Parallelism = *parallel
	if *llmFault > 0 || *engFault > 0 {
		opts.Faults = &lambdatune.FaultPlan{LLMRate: *llmFault, EngineRate: *engFault, Seed: *seed}
		opts.Resilience = &lambdatune.ResilienceOptions{MaxRetries: *retries, BreakerThreshold: *breaker}
	}

	db.SetPlanCache(*plancache)
	if *instr {
		db.Instrument()
	}

	var trace *lambdatune.Trace
	if *traceOut != "" {
		trace = lambdatune.NewTrace()
		opts.Trace = trace
	}
	if *progress {
		opts.Progress = os.Stderr
	}
	var reg *lambdatune.Metrics
	if *metrics != "" {
		reg = lambdatune.NewMetrics()
		opts.Metrics = reg
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = reg.WritePrometheus(w)
		})
		mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_, _ = io.WriteString(w, reg.String())
		})
		srv := &http.Server{Addr: *metrics, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "metrics server:", err)
			}
		}()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "serving metrics on %s/metrics\n", *metrics)
	}

	client := lambdatune.NewSimulatedLLM(*seed)
	if *rag {
		client = lambdatune.WithRetrieval(client, nil)
	}
	fmt.Printf("Tuning %s (%d queries) on %s with %s...\n", w.Name(), w.Len(), *dbms, client.Name())
	// Ctrl-C cancels the run cleanly: LLM calls abort and evaluation workers
	// stop within one query execution.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := db.TuneContext(ctx, w, client, opts)
	if trace != nil {
		// The trace is written even when the run failed: whatever spans were
		// recorded up to the error are worth inspecting.
		if werr := trace.WriteFile(*traceOut); werr != nil {
			fmt.Fprintln(os.Stderr, "trace export:", werr)
		} else {
			fmt.Fprintf(os.Stderr, "trace: %d spans -> %s\n", trace.Len(), *traceOut)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("\nBest configuration (%d candidates, %d prompt tokens):\n\n%s\n",
		res.Candidates, res.PromptTokens, res.BestScript)
	fmt.Printf("workload: %.1fs default → %.1fs tuned (%.1fx speedup)\n",
		res.DefaultSeconds, res.BestSeconds, res.Speedup())
	fmt.Printf("tuning cost: %.1fs simulated (bounded by Theorem 4.3)\n", res.TuningSeconds)
	if res.Faults.Any() {
		fmt.Printf("faults survived: %s\n", res.Faults)
	}
	if *instr {
		fmt.Printf("\n%s", db.BackendReport())
	}
	if trace != nil {
		fmt.Printf("\nphase breakdown:\n%s", trace.SummaryTable())
	}
	if *verbose {
		fmt.Println("\nprogress:")
		for _, p := range res.Progress {
			fmt.Printf("  %8.1fs → best %.1fs\n", p.TuningSeconds, p.BestSeconds)
		}
		for _, wmsg := range res.Warnings {
			fmt.Println("warning:", wmsg)
		}
	}
}

// traceSummary implements the `lambdatune trace-summary [-check] <file.jsonl>`
// subcommand: it reads an exported trace and prints the per-phase cost
// breakdown; -check first validates the file against the span schema.
func traceSummary(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trace-summary", flag.ContinueOnError)
	fs.SetOutput(stderr)
	check := fs.Bool("check", false, "validate the trace against the span schema before summarizing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: lambdatune trace-summary [-check] <trace.jsonl>")
		return 2
	}
	recs, err := obs.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *check {
		if err := obs.ValidateRecords(recs); err != nil {
			fmt.Fprintf(stderr, "invalid trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "trace ok: %d spans\n", len(recs))
	}
	fmt.Fprint(stdout, obs.SummaryTable(obs.Summarize(recs)))
	return 0
}
