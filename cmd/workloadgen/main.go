// Command workloadgen dumps a built-in benchmark: its schema statistics and
// SQL query set, as consumed by the tuning experiments.
//
// Usage:
//
//	workloadgen -benchmark job           # print queries
//	workloadgen -benchmark tpch-1 -schema
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lambdatune/internal/workload"
)

func main() {
	var (
		bench  = flag.String("benchmark", "tpch-1", "workload: "+strings.Join(workload.Names(), ", "))
		schema = flag.Bool("schema", false, "print schema statistics instead of queries")
	)
	flag.Parse()

	w, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *schema {
		fmt.Printf("-- %s: %d tables, %.1f GB\n", w.Name, len(w.Catalog.Tables()),
			float64(w.Catalog.TotalBytes())/float64(1<<30))
		for _, t := range w.Catalog.Tables() {
			fmt.Printf("%s (%d rows, %d B/row)\n", t.Name, t.Rows, t.RowWidth())
			for _, c := range t.Columns {
				fmt.Printf("  %-28s width=%-4d distinct=%d\n", c.Name, c.WidthBytes, c.Distinct)
			}
		}
		return
	}
	fmt.Printf("-- %s: %d queries\n", w.Name, len(w.Queries))
	for _, q := range w.Queries {
		fmt.Printf("-- query %s\n%s;\n\n", q.Name, q.Stmt.SQL())
	}
}
