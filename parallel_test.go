package lambdatune

import (
	"context"
	"errors"
	"testing"
)

// tuneBench runs one tuning run on a fresh copy of the named benchmark with
// the given worker count.
func tuneBench(t *testing.T, name string, parallelism int) *Result {
	t.Helper()
	db, w, err := Benchmark(name, Postgres)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Evaluation.Parallelism = parallelism
	res, err := db.Tune(w, NewSimulatedLLM(1), opts)
	if err != nil {
		t.Fatalf("%s parallelism=%d: %v", name, parallelism, err)
	}
	return res
}

// TestParallelismInvariantSelection pins the tentpole contract: every worker
// count picks the same best configuration (same script) with the same
// workload time and speedup, on every bundled scenario.
func TestParallelismInvariantSelection(t *testing.T) {
	names := []string{"tpch-1"}
	if !testing.Short() {
		names = BenchmarkNames()
	}
	for _, name := range names {
		base := tuneBench(t, name, 1)
		for _, p := range []int{2, 4, 8} {
			got := tuneBench(t, name, p)
			if got.BestScript != base.BestScript {
				t.Errorf("%s parallelism=%d: best script diverged\n--- p=1:\n%s\n--- p=%d:\n%s",
					name, p, base.BestScript, p, got.BestScript)
			}
			if got.BestSeconds != base.BestSeconds || got.Speedup() != base.Speedup() {
				t.Errorf("%s parallelism=%d: best %v (%.3fx), want %v (%.3fx)",
					name, p, got.BestSeconds, got.Speedup(), base.BestSeconds, base.Speedup())
			}
		}
	}
}

// TestParallelismOneByteIdentical: Parallelism 1 (and 0) take the sequential
// code path, so the whole Result — including virtual tuning cost and the
// progress trace — matches the pre-parallelism default exactly.
func TestParallelismOneByteIdentical(t *testing.T) {
	base := tuneBench(t, "tpch-1", 0) // zero value: sequential default
	one := tuneBench(t, "tpch-1", 1)
	if one.BestScript != base.BestScript ||
		one.BestSeconds != base.BestSeconds ||
		one.TuningSeconds != base.TuningSeconds {
		t.Fatalf("Parallelism=1 diverged from sequential: %+v vs %+v", one, base)
	}
	if len(one.Progress) != len(base.Progress) {
		t.Fatalf("progress traces differ: %d vs %d events", len(one.Progress), len(base.Progress))
	}
	for i := range one.Progress {
		if one.Progress[i] != base.Progress[i] {
			t.Fatalf("progress event %d differs: %+v vs %+v", i, one.Progress[i], base.Progress[i])
		}
	}
}

// cancellingClient cancels its context after serving n completions, then
// keeps serving — the tuner must stop on its own.
type cancellingClient struct {
	inner  Client
	n      int
	calls  int
	cancel context.CancelFunc
}

func (c *cancellingClient) Name() string { return "cancelling" }

func (c *cancellingClient) Complete(ctx context.Context, prompt string) (string, error) {
	c.calls++
	if c.calls == c.n {
		c.cancel()
	}
	return c.inner.Complete(ctx, prompt)
}

func TestTuneContextCancelledDuringSampling(t *testing.T) {
	db, w, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	client := &cancellingClient{inner: NewSimulatedLLM(1), n: 2, cancel: cancel}
	_, err = db.TuneContext(ctx, w, client, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if client.calls > 3 {
		t.Errorf("client called %d times after cancellation at call 2", client.calls)
	}
}

func TestTuneContextPreCancelled(t *testing.T) {
	db, w, err := Benchmark("tpch-1", Postgres)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.TuneContext(ctx, w, NewSimulatedLLM(1), DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
