module lambdatune

go 1.22
